"""Committed baseline of sanctioned findings, with mandatory justifications.

Some findings are *correct but intended* — the exact-replay test oracles
deliberately compare float-typed legacy fields, for example.  Rather than
sprinkling inline ``noqa`` comments through code that is otherwise clean,
the analyzer accepts a committed JSON baseline (``analysis-baseline.json``
at the repository root).  Every entry MUST carry a human-written
justification: entries with an empty justification, or one still starting
with ``TODO`` (the placeholder ``--write-baseline`` emits), are a
configuration error (exit 2) — a baseline is a reviewed decision, not a
mute button.

An entry matches a finding by rule code, path suffix, and an optional
``contains`` substring of the message.  Matching is line-number-free on
purpose: baselines must survive unrelated edits to the file.  Entries that
match nothing are reported as *stale* so they get pruned, but do not fail
the run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path, PurePosixPath

from repro.tools.common.violations import Violation

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "apply_baseline",
    "load_baseline",
    "render_baseline",
]

DEFAULT_BASELINE_NAME = "analysis-baseline.json"


class BaselineError(ValueError):
    """A malformed or unjustified baseline (a configuration error)."""


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One sanctioned finding."""

    code: str
    path: str  # posix path suffix, matched against the finding's path
    contains: str  # substring of the message ("" matches any)
    justification: str

    def matches(self, violation: Violation) -> bool:
        if violation.code != self.code:
            return False
        candidate = PurePosixPath(violation.path.replace("\\", "/"))
        suffix = PurePosixPath(self.path)
        if candidate != suffix and not str(candidate).endswith("/" + str(suffix)):
            return False
        return self.contains in violation.message


def load_baseline(path: str | Path) -> list[BaselineEntry]:
    """Parse and validate a baseline file.

    Raises :class:`BaselineError` on malformed JSON, missing fields, or a
    missing/placeholder justification.
    """
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or not isinstance(raw.get("entries"), list):
        raise BaselineError(
            f"baseline {path} must be an object with an 'entries' list"
        )
    entries: list[BaselineEntry] = []
    for index, item in enumerate(raw["entries"]):
        if not isinstance(item, dict):
            raise BaselineError(f"baseline entry #{index} is not an object")
        missing = {"code", "path", "justification"} - set(item)
        if missing:
            raise BaselineError(
                f"baseline entry #{index} is missing {sorted(missing)}"
            )
        justification = str(item["justification"]).strip()
        if not justification or justification.upper().startswith("TODO"):
            raise BaselineError(
                f"baseline entry #{index} ({item['code']} {item['path']}) has "
                f"no real justification; every sanctioned finding must say why"
            )
        entries.append(
            BaselineEntry(
                code=str(item["code"]),
                path=str(item["path"]),
                contains=str(item.get("contains", "")),
                justification=justification,
            )
        )
    return entries


def apply_baseline(
    violations: list[Violation], entries: list[BaselineEntry]
) -> tuple[list[Violation], list[tuple[Violation, BaselineEntry]], list[BaselineEntry]]:
    """Split findings into (kept, baselined pairs, stale entries)."""
    kept: list[Violation] = []
    baselined: list[tuple[Violation, BaselineEntry]] = []
    used: set[int] = set()
    for violation in violations:
        match: BaselineEntry | None = None
        for position, entry in enumerate(entries):
            if entry.matches(violation):
                match = entry
                used.add(position)
                break
        if match is None:
            kept.append(violation)
        else:
            baselined.append((violation, match))
    stale = [entry for position, entry in enumerate(entries) if position not in used]
    return kept, baselined, stale


def render_baseline(violations: list[Violation]) -> str:
    """Serialize findings as a baseline skeleton (``--write-baseline``).

    Justifications are emitted as ``TODO`` placeholders that the loader
    rejects, forcing a human to replace each one before the baseline is
    usable.
    """
    entries = [
        {
            "code": v.code,
            "path": PurePosixPath(v.path.replace("\\", "/")).as_posix(),
            "contains": v.message[:60],
            "justification": "TODO: explain why this finding is sanctioned",
        }
        for v in violations
    ]
    return json.dumps({"entries": entries}, indent=2, sort_keys=True) + "\n"
