"""SARIF 2.1.0 serialization of an analysis report.

The document is a pure function of the report: keys are emitted sorted and
the text is built with a fixed indent, so two runs producing the same
findings produce byte-identical SARIF (tested, and diffed in CI between a
cold and a warm cached run).  Baselined findings are *included* as results
carrying a ``suppressions`` entry of kind ``"external"`` with the
baseline's justification — SARIF viewers show them greyed-out rather than
losing them entirely.
"""

from __future__ import annotations

import json
from pathlib import PurePosixPath

from repro.tools.analysis.baseline import BaselineEntry
from repro.tools.analysis.catalog import iter_rules
from repro.tools.analysis.engine import AnalysisReport
from repro.tools.common.violations import Violation

__all__ = ["sarif_document", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)
_TOOL_NAME = "dbp-analysis"
_TOOL_VERSION = "1.0.0"


def _rule_index() -> dict[str, int]:
    return {rule.code: position for position, rule in enumerate(iter_rules())}


def _result(
    violation: Violation,
    indices: dict[str, int],
    entry: BaselineEntry | None,
) -> dict[str, object]:
    uri = PurePosixPath(violation.path.replace("\\", "/")).as_posix()
    region: dict[str, object] = {
        "startLine": violation.line,
        "startColumn": violation.col + 1,
    }
    if violation.end_line is not None:
        region["endLine"] = violation.end_line
    result: dict[str, object] = {
        "ruleId": violation.code,
        "ruleIndex": indices[violation.code],
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": region,
                }
            }
        ],
    }
    if entry is not None:
        result["suppressions"] = [
            {"kind": "external", "justification": entry.justification}
        ]
    return result


def sarif_document(report: AnalysisReport) -> dict[str, object]:
    """The report as a SARIF 2.1.0 object (plain dicts/lists)."""
    indices = _rule_index()
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "help": {"text": rule.help},
            "defaultConfiguration": {"level": "error"},
            "properties": {"pass": rule.pass_name, "scope": rule.scope},
        }
        for rule in iter_rules()
    ]
    results = [_result(v, indices, None) for v in report.violations]
    results.extend(_result(v, indices, entry) for v, entry in report.baselined)
    results.sort(
        key=lambda r: (
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],  # type: ignore[index]
            r["locations"][0]["physicalLocation"]["region"]["startLine"],  # type: ignore[index]
            r["ruleId"],
        )
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": _TOOL_VERSION,
                        "informationUri": "https://example.invalid/dbp-analysis",
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def to_sarif(report: AnalysisReport) -> str:
    """Byte-stable SARIF text (sorted keys, fixed indent, trailing newline)."""
    return json.dumps(sarif_document(report), indent=2, sort_keys=True) + "\n"
