"""Content-hash keyed summary cache for per-file facts.

Extraction is the expensive part of an analyzer run (full AST walks per
file); the fixpoint passes over facts are cheap.  Because
:class:`~repro.tools.analysis.facts.ModuleFacts` is a pure function of
``(schema version, module name, source bytes)``, caching it under the
sha256 of exactly that triple is sound: a warm run over an unchanged tree
re-extracts nothing and — since passes consume facts only — produces
byte-identical findings (CI asserts this).

Cache entries are pickles written atomically (temp file + ``os.replace``)
so a crashed run never leaves a torn entry; unreadable or stale-schema
entries count as misses and are silently rewritten.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from repro.tools.analysis.facts import FACTS_SCHEMA_VERSION, ModuleFacts

__all__ = ["DEFAULT_CACHE_DIR", "FactsCache"]

DEFAULT_CACHE_DIR = ".dbp-analysis-cache"


class FactsCache:
    """Pickle store of extracted facts keyed by source-content hash."""

    def __init__(self, directory: str | Path | None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(module: str, source: str) -> str:
        hasher = hashlib.sha256()
        hasher.update(f"{FACTS_SCHEMA_VERSION}\0{module}\0".encode())
        hasher.update(source.encode("utf-8", errors="surrogateescape"))
        return hasher.hexdigest()

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.facts"

    def get(self, key: str) -> ModuleFacts | None:
        if self.directory is None:
            self.misses += 1
            return None
        try:
            with open(self._path(key), "rb") as handle:
                facts = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            self.misses += 1
            return None
        if not isinstance(facts, ModuleFacts):
            self.misses += 1
            return None
        self.hits += 1
        return facts

    def put(self, key: str, facts: ModuleFacts) -> None:
        if self.directory is None:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(facts, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache directory degrades to cold runs.
            pass
