"""Project symbol table and call-target resolution.

:class:`ProjectIndex` joins the per-file :class:`~repro.tools.analysis.facts.ModuleFacts`
into one whole-program view: functions by qualname, classes with their
project base-class closure, and :meth:`resolve` — the single place where a
local :class:`~repro.tools.analysis.facts.CallRef` becomes a set of
concrete target qualnames.

Resolution is deliberately *dispatch-aware*:

* ``self.m()`` resolves through the enclosing class's project MRO and then
  fans out to every override of ``m`` in transitive subclasses (the static
  type does not pin the dynamic one).
* ``recv.m()`` where ``recv``'s annotation names a project class (Protocol
  or ABC) fans out to the base implementation plus every project subclass
  override — this is how ``algo.choose_bin(...)`` reaches all registered
  algorithms.
* Un-hinted attribute calls fan out **only** for the well-known hook names
  (``on_*``, ``choose_bin``/``choose_bin_indexed``,
  ``checkpoint_state``/``restore_state``); anything else stays unresolved
  rather than polluting the graph with every same-named method.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.tools.analysis.facts import CallRef, ClassFacts, FunctionFacts, ModuleFacts

__all__ = ["ProjectIndex"]

_HOOK_NAME_RE = re.compile(
    r"^(?:on_[a-z0-9_]+|choose_bin|choose_bin_indexed|checkpoint_state|restore_state)$"
)


class ProjectIndex:
    """Whole-program symbol table over a set of module facts."""

    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules: dict[str, ModuleFacts] = {}
        self.functions: dict[str, FunctionFacts] = {}
        self.classes: dict[str, ClassFacts] = {}
        #: simple class name -> class qualnames (usually one)
        self._class_by_name: dict[str, list[str]] = {}
        #: method name -> defining function qualnames (hook fan-out)
        self._methods_by_name: dict[str, list[str]] = {}
        #: alias maps per module
        self._imports: dict[str, dict[str, str]] = {}

        for facts in modules:
            self.modules[facts.module] = facts
            self._imports[facts.module] = dict(facts.imports)
            for fn in facts.functions:
                self.functions[fn.qualname] = fn
                if fn.klass is not None:
                    self._methods_by_name.setdefault(fn.name, []).append(fn.qualname)
            for klass in facts.classes:
                self.classes[klass.qualname] = klass
                self._class_by_name.setdefault(klass.name, []).append(klass.qualname)

        for bucket in self._methods_by_name.values():
            bucket.sort()
        for bucket in self._class_by_name.values():
            bucket.sort()

        #: direct project subclasses, then the transitive closure
        self._subclasses: dict[str, set[str]] = {q: set() for q in self.classes}
        for klass in self.classes.values():
            for base in klass.bases:
                base_q = self._resolve_class_name(klass.module, base)
                if base_q is not None:
                    self._subclasses.setdefault(base_q, set()).add(klass.qualname)
        self._transitive_subclasses: dict[str, frozenset[str]] = {}
        for qualname in self.classes:
            seen: set[str] = set()
            frontier = [qualname]
            while frontier:
                current = frontier.pop()
                for sub in self._subclasses.get(current, ()):
                    if sub not in seen:
                        seen.add(sub)
                        frontier.append(sub)
            self._transitive_subclasses[qualname] = frozenset(seen)

    # ------------------------------------------------------------------
    # Class machinery

    def _resolve_class_name(self, module: str, dotted: str) -> str | None:
        """Resolve a (possibly dotted) class expression seen in ``module``."""
        parts = dotted.split(".")
        aliases = self._imports.get(module, {})
        # Same-module class.
        candidate = f"{module}:{parts[-1]}"
        if len(parts) == 1 and candidate in self.classes:
            return candidate
        # Through an import alias: ``alias`` or ``alias.Class``.
        target = aliases.get(parts[0])
        if target is not None:
            full = ".".join([target, *parts[1:]])
            mod, _, name = full.rpartition(".")
            if f"{mod}:{name}" in self.classes:
                return f"{mod}:{name}"
            # ``from pkg import mod`` then ``mod.Class`` nests one deeper.
            if full.count(".") >= 1:
                mod2, _, name2 = full.rpartition(".")
                candidate2 = f"{mod2}:{name2}"
                if candidate2 in self.classes:
                    return candidate2
        # Fall back to the unique simple-name match.
        matches = self._class_by_name.get(parts[-1], [])
        if len(matches) == 1:
            return matches[0]
        return None

    def project_bases(self, class_qualname: str) -> Iterator[str]:
        """The project base-class chain (depth-first, no repeats)."""
        seen: set[str] = set()
        frontier = [class_qualname]
        while frontier:
            current = frontier.pop(0)
            klass = self.classes.get(current)
            if klass is None:
                continue
            for base in klass.bases:
                base_q = self._resolve_class_name(klass.module, base)
                if base_q is not None and base_q not in seen:
                    seen.add(base_q)
                    yield base_q
                    frontier.append(base_q)

    def base_name_chain(self, class_qualname: str) -> list[str]:
        """All base names (project or external, simple names) transitively."""
        names: list[str] = []
        seen_q: set[str] = set()
        frontier = [class_qualname]
        while frontier:
            current = frontier.pop(0)
            if current in seen_q:
                continue
            seen_q.add(current)
            klass = self.classes.get(current)
            if klass is None:
                continue
            for base in klass.bases:
                names.append(base.split(".")[-1])
                base_q = self._resolve_class_name(klass.module, base)
                if base_q is not None:
                    frontier.append(base_q)
        return names

    def is_observer_class(self, class_qualname: str) -> bool:
        """Whether the class transitively subclasses an ``*Observer`` base."""
        klass = self.classes.get(class_qualname)
        if klass is not None and klass.name.endswith("Observer"):
            return True
        return any(name.endswith("Observer") for name in self.base_name_chain(class_qualname))

    def _lookup_method(self, class_qualname: str, method: str) -> str | None:
        """Resolve a method through the project MRO (class then bases)."""
        klass = self.classes.get(class_qualname)
        if klass is None:
            return None
        if method in klass.methods:
            return f"{class_qualname}.{method}"
        for base_q in self.project_bases(class_qualname):
            base = self.classes[base_q]
            if method in base.methods:
                return f"{base_q}.{method}"
        return None

    def _method_with_overrides(self, class_qualname: str, method: str) -> list[str]:
        """The MRO resolution plus every subclass override (dynamic targets)."""
        targets: list[str] = []
        base = self._lookup_method(class_qualname, method)
        if base is not None:
            targets.append(base)
        for sub_q in sorted(self._transitive_subclasses.get(class_qualname, ())):
            sub = self.classes[sub_q]
            if method in sub.methods:
                targets.append(f"{sub_q}.{method}")
        seen: dict[str, None] = {}
        for target in targets:
            seen.setdefault(target)
        return [t for t in seen if t in self.functions]

    # ------------------------------------------------------------------
    # Call resolution

    def _resolve_imported_callable(self, module: str, chain: tuple[str, ...]) -> list[str]:
        """Resolve ``alias(...)`` / ``alias.attr(...)`` through imports."""
        aliases = self._imports.get(module, {})
        target = aliases.get(chain[0])
        if target is None:
            return []
        full = ".".join([target, *chain[1:]])
        mod, _, name = full.rpartition(".")
        # Function in a project module.
        if mod in self.modules and f"{mod}:{name}" in self.functions:
            return [f"{mod}:{name}"]
        # Class constructor -> __init__ (effects of construction).
        if f"{mod}:{name}" in self.classes:
            init = self._lookup_method(f"{mod}:{name}", "__init__")
            return [init] if init is not None else []
        # ``Class.method`` for an imported class (static/classmethod call).
        if len(chain) >= 2:
            head = ".".join([target, *chain[1:-1]])
            mod2, _, cls = head.rpartition(".")
            if f"{mod2}:{cls}" in self.classes:
                return self._method_with_overrides(f"{mod2}:{cls}", chain[-1])
        return []

    def _hint_classes(self, module: str, hint: tuple[str, ...]) -> list[str]:
        resolved: list[str] = []
        for name in hint:
            if name in ("Optional", "Union", "None", "Sequence", "list", "tuple"):
                continue
            class_q = self._resolve_class_name(module, name)
            if class_q is not None:
                resolved.append(class_q)
        return resolved

    def resolve(self, caller: FunctionFacts, ref: CallRef) -> list[str]:
        """All plausible concrete targets of ``ref`` made from ``caller``.

        Returns qualnames present in :attr:`functions`; an empty list means
        the call leaves the project (stdlib, builtins) or cannot be pinned
        down — the passes treat those as effect-free/exactness-neutral,
        which is why hook names get the conservative fan-out below.
        """
        if ref.resolved is not None and ref.resolved in self.functions:
            return [ref.resolved]

        if ref.kind == "name":
            # Same-module function not caught locally (e.g. defined later).
            candidate = f"{caller.module}:{ref.method}"
            if candidate in self.functions:
                return [candidate]
            return self._resolve_imported_callable(caller.module, ref.chain)

        if ref.kind == "dotted":
            return self._resolve_imported_callable(caller.module, ref.chain)

        if ref.kind == "self":
            if caller.klass is None:
                return []
            class_q = f"{caller.module}:{caller.klass}"
            return self._method_with_overrides(class_q, ref.method)

        if ref.kind == "self_attr":
            if caller.klass is None:
                return []
            klass = self.classes.get(f"{caller.module}:{caller.klass}")
            if klass is not None:
                attr = ref.chain[1]
                for name, hint in klass.attr_hints:
                    if name == attr:
                        targets: list[str] = []
                        for class_q in self._hint_classes(caller.module, hint):
                            targets.extend(
                                self._method_with_overrides(class_q, ref.method)
                            )
                        if targets:
                            return sorted(set(targets))
            # No annotation for the attribute: hooks still fan out.
            return self._hook_fanout(ref.method)

        if ref.kind == "method":
            if ref.receiver_hint:
                targets = []
                for class_q in self._hint_classes(caller.module, ref.receiver_hint):
                    targets.extend(self._method_with_overrides(class_q, ref.method))
                if targets:
                    return sorted(set(targets))
            return self._hook_fanout(ref.method)

        return []

    def resolve_name_in_module(self, module: str, name: str) -> list[str]:
        """Resolve a bare name seen in ``module`` without a caller context.

        Used for worker-task references (``run_tasks([task, ...])``), which
        are collected at module granularity: tries a module-level function,
        then a unique nested function, then the import table.
        """
        candidate = f"{module}:{name}"
        if candidate in self.functions:
            return [candidate]
        nested = sorted(
            q
            for q in self.functions
            if q.startswith(module + ":") and q.endswith("." + name)
        )
        if len(nested) == 1:
            return nested
        return self._resolve_imported_callable(module, (name,))

    def _hook_fanout(self, method: str) -> list[str]:
        if not _HOOK_NAME_RE.match(method):
            return []
        return list(self._methods_by_name.get(method, ()))

    # ------------------------------------------------------------------
    # Effect-pass roots

    def hook_roots(self) -> list[tuple[str, str]]:
        """``(qualname, kind)`` for every purity root.

        Roots are ``on_*`` methods of observer-like classes (kind
        ``"observer-hook"``) and ``choose_bin``/``choose_bin_indexed``
        implementations (kind ``"choose-bin"``).
        """
        roots: list[tuple[str, str]] = []
        for fn in self.functions.values():
            if fn.klass is None:
                continue
            class_q = f"{fn.module}:{fn.klass}"
            if fn.name in ("choose_bin", "choose_bin_indexed"):
                roots.append((fn.qualname, "choose-bin"))
            elif fn.name.startswith("on_") and self.is_observer_class(class_q):
                roots.append((fn.qualname, "observer-hook"))
        roots.sort()
        return roots
