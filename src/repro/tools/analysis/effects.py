"""Effect-inference pass: transitive purity of hooks (DBP013).

Every function gets an *effect summary* — the set of ambient effects
observable by calling it: ``reads-clock``, ``performs-io``, ``global-rng``,
``mutates-global:<name>``, and ``mutates-param:<param>``.  Local seeds come
from extraction; this pass closes them over the call graph:

* Ambient effects (clock/io/rng/global mutation) propagate to every caller
  unconditionally.
* ``mutates-param`` propagates *through the argument mapping*: if callee
  ``g`` mutates its parameter ``xs`` and caller ``f`` passes its own
  parameter ``items`` in that position, then ``f`` mutates ``items``.
  Mutation of objects the caller created locally is invisible to *its*
  callers, which is exactly the right cut-off.

Each propagated effect carries a witness chain ("calls g() (line 12) →
time.time() (line 40)") so a DBP013 report names the full path from the
hook to the offending primitive — the linter's DBP005 only sees the hook
body; this pass guarantees the property over everything reachable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tools.analysis.callgraph import ProjectIndex
from repro.tools.analysis.catalog import ANALYSIS_RULES, rule_scope_applies
from repro.tools.common.config import LintConfig
from repro.tools.common.violations import Violation

__all__ = ["Witness", "compute_effect_summaries", "run_effects_pass"]

_AMBIENT = ("reads-clock", "performs-io", "global-rng")
_MAX_CHAIN = 8


@dataclass(frozen=True, slots=True)
class Witness:
    """Where an effect enters a function, and the chain that explains it."""

    line: int
    chain: tuple[str, ...]


def _short(qualname: str) -> str:
    return qualname.split(":", 1)[1]


def compute_effect_summaries(index: ProjectIndex) -> dict[str, dict[str, Witness]]:
    """Fixpoint ``qualname -> {effect -> witness}`` over the call graph."""
    summaries: dict[str, dict[str, Witness]] = {}
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        local: dict[str, Witness] = {}
        for effect in fn.effects:
            local.setdefault(
                effect.effect,
                Witness(
                    line=effect.loc.line,
                    chain=(f"{effect.detail} (line {effect.loc.line})",),
                ),
            )
        summaries[qualname] = local

    changed = True
    while changed:
        changed = False
        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            own = summaries[qualname]
            for site in fn.calls:
                targets = sorted(index.resolve(fn, site.ref))
                for target in targets:
                    callee = index.functions[target]
                    callee_effects = summaries[target]
                    for effect in sorted(callee_effects):
                        witness = callee_effects[effect]
                        step = f"calls {_short(target)}() (line {site.ref.loc.line})"
                        chain = (step, *witness.chain)[:_MAX_CHAIN]
                        if effect in _AMBIENT or effect.startswith("mutates-global:"):
                            if effect not in own:
                                own[effect] = Witness(site.ref.loc.line, chain)
                                changed = True
                            continue
                        if effect.startswith("mutates-param:"):
                            param = effect.split(":", 1)[1]
                            mapped = _map_param(fn, site, callee, param)
                            if mapped is None or mapped == "self":
                                continue
                            mapped_effect = f"mutates-param:{mapped}"
                            if mapped_effect not in own:
                                own[mapped_effect] = Witness(site.ref.loc.line, chain)
                                changed = True
    return summaries


def _map_param(fn, site, callee, param: str) -> str | None:
    """Which of the caller's params is passed as callee's ``param``, if any."""
    try:
        position = callee.params.index(param)
    except ValueError:
        return None
    offset = 1 if callee.params and callee.params[0] == "self" and site.ref.kind != "name" else 0
    for pos, caller_param in site.pos_params:
        if pos == position - offset:
            return caller_param
    for kw, caller_param in site.kw_params:
        if kw == param:
            return caller_param
    return None


_ROOT_LABEL = {"observer-hook": "observer hook", "choose-bin": "choose_bin implementation"}


def run_effects_pass(
    index: ProjectIndex,
    config: LintConfig,
    summaries: dict[str, dict[str, Witness]] | None = None,
) -> list[Violation]:
    if summaries is None:
        summaries = compute_effect_summaries(index)
    rule = ANALYSIS_RULES["DBP013"]
    if not config.rule_enabled(rule.code):
        return []
    violations: list[Violation] = []
    for qualname, kind in index.hook_roots():
        fn = index.functions[qualname]
        if not rule_scope_applies(rule, fn.module, config):
            continue
        facts = index.modules[fn.module]
        effects = summaries.get(qualname, {})
        for effect in sorted(effects):
            if effect == "mutates-param:self":
                continue
            witness = effects[effect]
            violations.append(
                Violation(
                    path=facts.path,
                    line=witness.line,
                    col=fn.loc.col,
                    code=rule.code,
                    rule=rule.name,
                    message=(
                        f"{_ROOT_LABEL[kind]} {_short(qualname)}() is not "
                        f"transitively pure: {effect} via "
                        f"{' -> '.join(witness.chain)}"
                    ),
                    end_line=witness.line,
                )
            )
    violations.sort(key=Violation.sort_key)
    return violations
