"""Command-line interface: ``python -m repro.tools.analysis src``.

Exit codes mirror the linter: 0 — clean (modulo baseline); 1 — findings
(or unparsable files); 2 — usage error, unknown pass/rule, or a malformed/
unjustified baseline.

Output formats: ``human`` (one line per finding), ``json`` (the report —
a pure function of the analyzed sources, so cold- and warm-cache runs are
byte-identical), ``sarif`` (SARIF 2.1.0, baselined findings carried as
externally-suppressed results).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.tools.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    load_baseline,
    render_baseline,
)
from repro.tools.analysis.cache import DEFAULT_CACHE_DIR, FactsCache
from repro.tools.analysis.catalog import (
    DEFAULT_EXACT_PACKAGES,
    PASSES,
    all_codes,
    iter_rules,
)
from repro.tools.analysis.engine import analysis_config, analyze_paths
from repro.tools.analysis.sarif import to_sarif

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.analysis",
        description=(
            "Whole-program exactness / effect / determinism analysis "
            "for the DBP reproduction."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyze")
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--only",
        metavar="PASSES",
        help=f"comma-separated passes to run (default: all of {','.join(PASSES)})",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            f"baseline file of sanctioned findings "
            f"(default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help=(
            "write current findings to PATH as a baseline skeleton with "
            "TODO justifications (which the loader rejects until edited) and exit"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"facts-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the facts cache (always extract from source)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding counts to human output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="print the pass names and exit",
    )
    return parser


def _parse_codes(raw: str | None, parser: argparse.ArgumentParser) -> frozenset[str] | None:
    if raw is None:
        return None
    codes = frozenset(token.strip().upper() for token in raw.split(",") if token.strip())
    unknown = codes - set(all_codes())
    if unknown:
        parser.error(
            f"unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(all_codes())})"
        )
    return codes


def _parse_passes(raw: str | None, parser: argparse.ArgumentParser) -> tuple[str, ...]:
    if raw is None:
        return PASSES
    wanted = [token.strip().lower() for token in raw.split(",") if token.strip()]
    unknown = [p for p in wanted if p not in PASSES]
    if unknown:
        parser.error(
            f"unknown pass(es): {', '.join(unknown)} (known: {', '.join(PASSES)})"
        )
    return tuple(p for p in PASSES if p in wanted)


def _print_rules() -> None:
    print("Passes: " + ", ".join(PASSES))
    print("Rules (scope 'exact' = " + ", ".join(DEFAULT_EXACT_PACKAGES) + "):")
    for rule in iter_rules():
        print(
            f"  {rule.code}  {rule.name:<32} [{rule.pass_name:>11}/{rule.scope}]  "
            f"{rule.summary}"
        )


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0
    if args.list_passes:
        for name in PASSES:
            print(name)
        return 0

    if not args.paths:
        parser.error("no paths given (try: python -m repro.tools.analysis src)")
    for raw in args.paths:
        if not Path(raw).exists():
            parser.error(f"no such file or directory: {raw}")

    passes = _parse_passes(args.only, parser)
    config = analysis_config(
        select=_parse_codes(args.select, parser),
        ignore=_parse_codes(args.ignore, parser) or frozenset(),
    )

    baseline = []
    if not args.no_baseline and args.write_baseline is None:
        baseline_path: Path | None = None
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        elif Path(DEFAULT_BASELINE_NAME).is_file():
            baseline_path = Path(DEFAULT_BASELINE_NAME)
        if baseline_path is not None:
            try:
                baseline = load_baseline(baseline_path)
            except BaselineError as exc:
                print(f"baseline error: {exc}", file=sys.stderr)
                return 2

    cache = None if args.no_cache else FactsCache(args.cache_dir)
    report = analyze_paths(args.paths, config, passes=passes, cache=cache, baseline=baseline)

    if args.write_baseline is not None:
        Path(args.write_baseline).write_text(
            render_baseline(report.violations), encoding="utf-8"
        )
        print(
            f"wrote {len(report.violations)} finding(s) to {args.write_baseline}; "
            f"replace every TODO justification before using it"
        )
        return 0

    if args.format == "json":
        print(json.dumps(report.as_json(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    if args.format == "sarif":
        sys.stdout.write(to_sarif(report))
        return 0 if report.ok else 1

    for path, message in report.errors:
        print(f"{path}: PARSE ERROR {message}", file=sys.stderr)
    for violation in report.violations:
        print(violation.render())
    for entry in report.stale_baseline:
        print(
            f"stale baseline entry: {entry.code} {entry.path} "
            f"(matched no finding; prune it)",
            file=sys.stderr,
        )
    if args.statistics and report.violations:
        print()
        for code, count in report.statistics().items():
            print(f"{count:>5}  {code}")
    summary = (
        f"analyzed {report.files_checked} files "
        f"[{', '.join(report.passes_run)}]: "
        f"{len(report.violations)} finding(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} suppressed"
    )
    if report.errors:
        summary += f", {len(report.errors)} parse error(s)"
    print(summary)
    return 0 if report.ok else 1
