"""Exactness-flow pass: DBP011 (cost sinks) and DBP012 (checkpoint payloads).

The per-file extraction already classified every cost/payload sink
expression as either *locally contaminated* (a float literal, ``float()``
cast, ``math.*`` result, or ``int/int`` true division reaches it inside the
file) or *call-dependent* (exact unless some callee returns an
engine-introduced float).  This pass closes the call-dependent half with an
interprocedural fixpoint over ``returns_introduced``: a function returns an
engine-introduced float if its own return expression introduces one, or if
the return value depends on a call to a function that (transitively) does.

Only *engine-introduced* floats count.  A value that arrives as a float
from the caller (annotated ``float`` parameter, parsed trace data) is the
caller's business — the linter's DBP001/DBP008 police those boundaries;
this pass hunts the conversions the engine itself performs.
"""

from __future__ import annotations

from repro.tools.analysis.callgraph import ProjectIndex
from repro.tools.analysis.catalog import ANALYSIS_RULES, rule_scope_applies
from repro.tools.common.config import LintConfig
from repro.tools.common.violations import Violation

__all__ = ["compute_return_summaries", "run_exactness_pass"]


def compute_return_summaries(index: ProjectIndex) -> dict[str, str]:
    """Fixpoint map ``qualname -> reason`` for float-returning functions.

    The reason string explains *why* the return value is an
    engine-introduced float, including the call chain when the introduction
    happens in a callee.
    """
    summary: dict[str, str] = {}
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        if fn.returns_introduced:
            summary[qualname] = fn.return_reason or "returns an engine-introduced float"

    changed = True
    while changed:
        changed = False
        for qualname in sorted(index.functions):
            if qualname in summary:
                continue
            fn = index.functions[qualname]
            for dep in fn.return_call_deps:
                for target in index.resolve(fn, dep):
                    if target in summary:
                        callee = target.split(":", 1)[1]
                        summary[qualname] = (
                            f"returns the result of {callee}() "
                            f"[{summary[target]}]"
                        )
                        changed = True
                        break
                if qualname in summary:
                    break
    return summary


_SINK_CODES = {"cost": "DBP011", "payload": "DBP012"}


def run_exactness_pass(index: ProjectIndex, config: LintConfig) -> list[Violation]:
    summaries = compute_return_summaries(index)
    violations: list[Violation] = []
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        facts = index.modules[fn.module]
        for flow in fn.flows:
            code = _SINK_CODES[flow.sink]
            rule = ANALYSIS_RULES[code]
            if not config.rule_enabled(code):
                continue
            if not rule_scope_applies(rule, fn.module, config):
                continue
            noun = "cost sink" if flow.sink == "cost" else "checkpoint payload"
            if flow.introduced:
                reason = flow.reason
            else:
                reason = None
                for dep in flow.call_deps:
                    for target in index.resolve(fn, dep):
                        if target in summaries:
                            callee = target.split(":", 1)[1]
                            reason = (
                                f"call to {callee}() returns an engine-introduced "
                                f"float [{summaries[target]}]"
                            )
                            break
                    if reason is not None:
                        break
                if reason is None:
                    continue  # every callee is exact or external
            violations.append(
                Violation(
                    path=facts.path,
                    line=flow.loc.line,
                    col=flow.loc.col,
                    code=code,
                    rule=rule.name,
                    message=(
                        f"engine-introduced float reaches {noun} "
                        f"{flow.sink_name}: {reason}; keep the value int/Fraction "
                        f"(Fraction division, exact accumulators)"
                    ),
                    end_line=flow.loc.end_line,
                )
            )
    violations.sort(key=Violation.sort_key)
    return violations
