"""Experiment E21 (extension) — how common are removal anomalies?

For each algorithm, the fraction of random traces containing at least one
item whose *removal raises the cost*, plus the largest relative increase
seen.  The OPT lower bound is monotone under removal (checked), so every
anomaly isolates pure online suboptimality — the phenomenon the paper's
competitive ratios upper-bound.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import BestFit, FirstFit, WorstFit
from ..analysis.anomalies import find_removal_anomalies
from ..analysis.sweep import SweepResult
from ..opt.lower_bounds import opt_total_lower_bound
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "anomalies",
    display="Extension: online pathologies",
    description="Removal anomalies (serving fewer requests can cost more) per algorithm",
)
def run(
    seeds: Sequence[int] = tuple(range(12)),
    arrival_rate: float = 2.0,
    horizon: float = 30.0,
) -> ExperimentResult:
    factories = {
        "first-fit": FirstFit,
        "best-fit": BestFit,
        "worst-fit": WorstFit,
    }
    table = SweepResult(
        headers=["algorithm", "traces", "traces_with_anomaly", "rate", "worst_increase"]
    )
    any_found = {name: False for name in factories}
    lb_monotone = True
    worst: dict[str, float] = {name: 0.0 for name in factories}
    hits: dict[str, int] = {name: 0 for name in factories}
    for seed in seeds:
        trace = generate_trace(
            arrival_rate=arrival_rate,
            horizon=horizon,
            duration=Clipped(Exponential(3.0), 1.0, 8.0),
            size=Uniform(0.2, 0.7),
            seed=seed,
        )
        items = list(trace.items)
        if len(items) < 2:
            continue
        # OPT LB monotonicity under each single removal (spot: first 5).
        base_lb = float(opt_total_lower_bound(items))
        for i in range(min(5, len(items))):
            reduced = items[:i] + items[i + 1 :]
            lb_monotone = lb_monotone and float(
                opt_total_lower_bound(reduced)
            ) <= base_lb + 1e-9 * max(1.0, base_lb)
        for name, factory in factories.items():
            found = find_removal_anomalies(items, factory, stop_after=None)
            if found:
                any_found[name] = True
                hits[name] += 1
                worst[name] = max(worst[name], max(a.relative_increase for a in found))
    for name in factories:
        table.add(
            {
                "algorithm": name,
                "traces": len(seeds),
                "traces_with_anomaly": hits[name],
                "rate": hits[name] / len(seeds),
                "worst_increase": worst[name],
            }
        )
    return ExperimentResult(
        name="anomalies",
        title="Removal anomalies: serving fewer requests can cost more",
        table=table,
        checks=[
            ClaimCheck(
                claim="removal anomalies exist for First Fit and Best Fit on "
                "random traces",
                holds=any_found["first-fit"] and any_found["best-fit"],
            ),
            ClaimCheck(
                claim="the OPT lower bound is monotone under item removal "
                "(anomalies are purely online artifacts)",
                holds=lb_monotone,
            ),
        ],
    )
