"""Experiment-result persistence.

Experiments are deterministic, but regenerating EXPERIMENTS.md, diffing
runs across machines, and archiving claim checks wants a stable on-disk
format.  :func:`result_to_dict` flattens an
:class:`~repro.experiments.registry.ExperimentResult` into JSON-safe data
(Fractions become ``{"fraction": "a/b", "value": float}``), and the CLI's
``run --out`` writes a document per invocation.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from ..core.resources import Resources
from .registry import ExperimentResult

__all__ = ["result_to_dict", "results_to_json", "load_results_json"]

FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    if isinstance(value, Fraction):
        return {"fraction": f"{value.numerator}/{value.denominator}", "value": float(value)}
    if isinstance(value, Resources):
        # 1-D vectors unwrap to the bare scalar so a 1-D vector run's
        # artifact is byte-identical to the scalar engine's.
        if value.dims == 1:
            return _jsonable(value.as_scalar())
        return {"resources": [_jsonable(v) for v in value.values]}
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Flatten one experiment result into JSON-safe primitives."""
    return {
        "name": result.name,
        "title": result.title,
        "headers": list(result.table.headers),
        "rows": [[_jsonable(v) for v in row] for row in result.table.rows],
        "checks": [
            {"claim": c.claim, "holds": c.holds, "detail": c.detail}
            for c in result.checks
        ],
        "notes": list(result.notes),
        "all_claims_hold": result.all_claims_hold,
    }


def results_to_json(results: list[ExperimentResult], *, indent: int | None = 2) -> str:
    """Serialise a batch of experiment results."""
    return json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "experiments": [result_to_dict(r) for r in results],
        },
        indent=indent,
    )


def load_results_json(document: str) -> list[dict[str, Any]]:
    """Load a previously saved batch; returns the raw experiment dicts.

    Raises ``ValueError`` on a format-version mismatch so downstream
    tooling fails fast rather than misreading columns.
    """
    data = json.loads(document)
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version {version!r}; expected {FORMAT_VERSION}"
        )
    return data["experiments"]
