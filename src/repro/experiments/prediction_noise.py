"""Experiment E20 (extension) — packing with noisy predictions.

The algorithms-with-predictions question for MinTotal DBP: how fast does
the clairvoyance gain (E13) decay when the departure oracle lies?  Sweeps
the multiplicative log-normal error σ from perfect (0) to near-useless (3)
on heavy-tailed-session traces.

Expected shape (checked): σ=0 reproduces perfect clairvoyance exactly;
the mean gain decays as σ grows; and even badly-wrong predictions degrade
gracefully — the prediction-guided policy stays within a few percent of
blind First Fit instead of collapsing (it is still an Any Fit member, so
every worst-case guarantee that covers the family still applies).
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import FirstFit
from ..analysis.sweep import SweepResult
from ..clairvoyant.algorithms import MinExpandFit, simulate_clairvoyant
from ..clairvoyant.predictions import simulate_with_predictions
from ..core.simulator import simulate
from ..workloads.distributions import BoundedPareto, Uniform
from ..workloads.generators import generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "prediction-noise",
    display="Extension: algorithms with predictions",
    description="Clairvoyance gain vs departure-prediction error σ",
)
def run(
    sigmas: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 3.0),
    seeds: Sequence[int] = (0, 1, 2),
    arrival_rate: float = 5.0,
    horizon: float = 150.0,
    mu: float = 30.0,
) -> ExperimentResult:
    table = SweepResult(headers=["sigma", "seed", "cost", "vs_blind_ff", "vs_perfect"])
    exact_at_zero = True
    mean_ratio: dict[float, float] = {}
    for sigma in sigmas:
        ratios = []
        for seed in seeds:
            trace = generate_trace(
                arrival_rate=arrival_rate,
                horizon=horizon,
                duration=BoundedPareto(1.0, mu, alpha=1.2),
                size=Uniform(0.05, 0.6),
                seed=seed,
            )
            blind = float(simulate(trace.items, FirstFit()).total_cost())
            perfect = float(
                simulate_clairvoyant(trace.items, MinExpandFit()).total_cost()
            )
            noisy = float(
                simulate_with_predictions(
                    trace.items, MinExpandFit(), noise_sigma=sigma, seed=seed + 100
                ).total_cost()
            )
            if sigma == 0.0:
                exact_at_zero = exact_at_zero and noisy == perfect
            ratios.append(noisy / blind)
            table.add(
                {
                    "sigma": sigma,
                    "seed": seed,
                    "cost": noisy,
                    "vs_blind_ff": noisy / blind,
                    "vs_perfect": noisy / perfect,
                }
            )
        mean_ratio[sigma] = sum(ratios) / len(ratios)
    return ExperimentResult(
        name="prediction-noise",
        title="Departure predictions under noise (MinExpand vs blind FF)",
        table=table,
        checks=[
            ClaimCheck(
                claim="σ = 0 reproduces perfect clairvoyance exactly",
                holds=exact_at_zero,
            ),
            ClaimCheck(
                claim="the mean advantage decays from σ=0 to the largest σ",
                holds=mean_ratio[sigmas[0]] <= mean_ratio[sigmas[-1]],
                detail=", ".join(f"σ={s}: {r:.4f}×FF" for s, r in mean_ratio.items()),
            ),
            ClaimCheck(
                claim="even the noisiest predictions stay within 5% of blind FF "
                "(graceful degradation — the policy is still Any Fit)",
                holds=all(r <= 1.05 for r in mean_ratio.values()),
            ),
        ],
    )
