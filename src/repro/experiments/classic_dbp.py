"""Experiment E14 (extension) — MinTotal vs the classic MaxBins objective.

Runs the fleet on general and unit-fraction workloads, reporting *both*
objectives.  Checks the known literature context empirically (far from
binding on random instances, but never violated): FF ≤ 2.897× optimal on
MaxBins (Coffman et al.), Any Fit ≤ 3× on unit-fraction items (Chan et
al.) — and exhibits the paper's motivation: an algorithm that is good for
MaxBins can still burn bin-time, because MaxBins ignores *how long* bins
stay open.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from ..algorithms import BestFit, FirstFit, NextFit, WorstFit
from ..analysis.classic_dbp import (
    CHAN_UNIT_FRACTION_ANYFIT,
    COFFMAN_FF_UPPER,
    max_bins_lower_bound,
)
from ..analysis.sweep import SweepResult
from ..core.item import Item
from ..core.simulator import simulate
from ..opt.lower_bounds import opt_total_lower_bound
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_trace
from ..workloads.trace import Trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _unit_fraction_trace(seed: int, horizon: float, rate: float) -> Trace:
    """Items with sizes 1/w for small integers w (Chan et al.'s model)."""
    rng = np.random.default_rng(seed)
    base = generate_trace(
        arrival_rate=rate,
        horizon=horizon,
        duration=Clipped(Exponential(3.0), 1.0, 9.0),
        size=Uniform(0.1, 1.0),  # replaced below
        seed=seed,
        name="unit-fraction",
    )
    ws = rng.choice([1, 2, 3, 4, 5, 8], size=len(base))
    items = [
        Item(
            arrival=it.arrival,
            departure=it.departure,
            size=Fraction(1, int(w)),
            item_id=it.item_id,
        )
        for it, w in zip(base.items, ws)
    ]
    return Trace.from_items(items, name="unit-fraction")


@register_experiment(
    "classic-dbp",
    display="Related work (Coffman 1983 / Chan 2008)",
    description="MaxBins vs MinTotal: both objectives for the fleet, plus the "
    "unit-fraction special case",
)
def run(
    seeds: Sequence[int] = (0, 1, 2),
    horizon: float = 120.0,
    rate: float = 4.0,
) -> ExperimentResult:
    table = SweepResult(
        headers=["workload", "seed", "algorithm", "max_bins", "maxbins_ratio", "mintotal_ratio"]
    )
    ff_ok = True
    anyfit_unit_ok = True
    rank_disagreement = False
    for seed in seeds:
        general = generate_trace(
            arrival_rate=rate,
            horizon=horizon,
            duration=Clipped(Exponential(3.0), 1.0, 9.0),
            size=Uniform(0.1, 0.9),
            seed=seed,
            name="general",
        )
        unit = _unit_fraction_trace(seed, horizon, rate)
        for trace in (general, unit):
            mb_lb = max_bins_lower_bound(trace.items)
            mt_lb = float(opt_total_lower_bound(trace.items))
            per_algo = {}
            for algo in (FirstFit(), BestFit(), WorstFit(), NextFit()):
                result = simulate(trace.items, algo, capacity=1)
                mb_ratio = result.max_bins_used / mb_lb
                mt_ratio = float(result.total_cost()) / mt_lb
                per_algo[algo.name] = (mb_ratio, mt_ratio)
                table.add(
                    {
                        "workload": trace.name,
                        "seed": seed,
                        "algorithm": algo.name,
                        "max_bins": result.max_bins_used,
                        "maxbins_ratio": mb_ratio,
                        "mintotal_ratio": mt_ratio,
                    }
                )
            ff_ok = ff_ok and per_algo["first-fit"][0] <= COFFMAN_FF_UPPER
            if trace.name == "unit-fraction":
                anyfit_unit_ok = anyfit_unit_ok and all(
                    per_algo[n][0] <= CHAN_UNIT_FRACTION_ANYFIT
                    for n in ("first-fit", "best-fit", "worst-fit")
                )
            # Do the two objectives ever order a pair of algorithms oppositely?
            names = list(per_algo)
            for a in range(len(names)):
                for b in range(a + 1, len(names)):
                    (mba, mta), (mbb, mtb) = per_algo[names[a]], per_algo[names[b]]
                    if (mba - mbb) * (mta - mtb) < 0:
                        rank_disagreement = True
    return ExperimentResult(
        name="classic-dbp",
        title="Classic DBP (MaxBins) vs MinTotal on the same packings",
        table=table,
        checks=[
            ClaimCheck(
                claim="FF MaxBins ratio ≤ 2.897 (Coffman et al.) on every trace",
                holds=ff_ok,
            ),
            ClaimCheck(
                claim="Any Fit MaxBins ratio ≤ 3 on unit-fraction items (Chan et al.)",
                holds=anyfit_unit_ok,
            ),
            ClaimCheck(
                claim="the two objectives rank some algorithm pair oppositely "
                "(MaxBins ≠ MinTotal, the paper's motivation)",
                holds=rank_disagreement,
            ),
        ],
        notes=[
            "MaxBins ratios use the load lower bound max_t ⌈load/W⌉, so they "
            "overestimate the true competitive ratio."
        ],
    )
