"""Experiment E11 — bounds (b.1)-(b.3) and the OPT bracket.

Validates, on a spread of workloads, the cost sandwich every theorem rests
on::

    max(b.1, b.2) ≤ pointwise LB ≤ OPT_total ≤ FFD repack UB
                                  ≤ A_total ≤ b.3        (for A ∈ Any Fit)

(the last ``≤`` holds for Any Fit members; ``A_total ≤ b.3`` holds for
every algorithm).  Where snapshots are small the exact branch-and-bound
``OPT_total`` is also computed and must land inside the bracket.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import BestFit, FirstFit, NewBinPerItem
from ..analysis.sweep import SweepResult
from ..core.simulator import simulate
from ..opt.lower_bounds import naive_upper_bound, opt_bracket
from ..opt.snapshot import opt_total_exact
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "bounds-sandwich",
    display="Section 4 bounds (b.1)-(b.3)",
    description="The cost sandwich: lower bounds ≤ exact OPT_total ≤ FFD UB ≤ "
    "algorithm cost ≤ b.3",
)
def run(
    seeds: Sequence[int] = (0, 1, 2, 3),
    arrival_rate: float = 1.5,
    horizon: float = 60.0,
) -> ExperimentResult:
    table = SweepResult(
        headers=["seed", "items", "b1", "b2", "pointwise_lb", "opt_exact", "ffd_ub", "ff_cost", "b3"]
    )
    sandwich_ok = True
    exact_in_bracket = True
    for seed in seeds:
        trace = generate_trace(
            arrival_rate=arrival_rate,
            horizon=horizon,
            duration=Clipped(Exponential(3.0), 1.0, 9.0),
            size=Uniform(0.1, 0.9),
            seed=seed,
        )
        items = trace.items
        bracket = opt_bracket(items, capacity=1.0)
        exact = opt_total_exact(items, capacity=1.0)
        b3 = naive_upper_bound(items)
        ff = simulate(items, FirstFit(), capacity=1.0).total_cost()
        bf = simulate(items, BestFit(), capacity=1.0).total_cost()
        naive = simulate(items, NewBinPerItem(), capacity=1.0).total_cost()
        tol = 1e-9 * max(1.0, float(b3))
        sandwich_ok = sandwich_ok and (
            bracket.demand_lb <= bracket.pointwise_lb + tol
            and bracket.span_lb <= bracket.pointwise_lb + tol
            and bracket.pointwise_lb <= bracket.ffd_ub + tol
            and bracket.pointwise_lb <= ff + tol  # any algorithm ≥ OPT LB
            and bracket.pointwise_lb <= bf + tol
            and ff <= b3 + tol
            and bf <= b3 + tol
            and abs(float(naive - b3)) <= tol  # b.3 is exactly NewBinPerItem
        )
        exact_in_bracket = exact_in_bracket and (
            bracket.pointwise_lb <= exact + tol and exact <= bracket.ffd_ub + tol
        )
        table.add(
            {
                "seed": seed,
                "items": len(items),
                "b1": float(bracket.demand_lb),
                "b2": float(bracket.span_lb),
                "pointwise_lb": float(bracket.pointwise_lb),
                "opt_exact": float(exact),
                "ffd_ub": float(bracket.ffd_ub),
                "ff_cost": float(ff),
                "b3": float(b3),
            }
        )
    return ExperimentResult(
        name="bounds-sandwich",
        title="Bounds (b.1)-(b.3) and the OPT_total bracket",
        table=table,
        checks=[
            ClaimCheck(
                claim="b.1, b.2 ≤ pointwise LB ≤ FFD UB ≤ FF cost ≤ b.3, "
                "and NewBinPerItem cost = b.3 exactly",
                holds=sandwich_ok,
            ),
            ClaimCheck(
                claim="exact OPT_total lies within [pointwise LB, FFD UB]",
                holds=exact_in_bracket,
            ),
        ],
    )
