"""Experiment E5 — Theorem 3: large items (all sizes ≥ W/k).

On traces whose every size is at least ``W/k``, First Fit's total cost is
provably at most ``k · OPT_total``.  The experiment sweeps k and workload
shapes and reports the measured ratio (against the OPT lower bound, i.e.
conservatively) next to the bound.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import FirstFit
from ..analysis.sweep import SweepResult
from ..core.metrics import trace_stats
from ..core.simulator import simulate
from ..opt.lower_bounds import opt_total_lower_bound
from ..opt.snapshot import opt_total_l2_lower_bound
from ..workloads.distributions import Uniform
from ..workloads.generators import generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "thm3-large-items",
    display="Theorem 3",
    description="Large items (s ≥ W/k): FF_total ≤ k·OPT_total",
)
def run(
    ks: Sequence[float] = (2, 4, 8),
    arrival_rates: Sequence[float] = (0.5, 3.0),
    horizon: float = 200.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    table = SweepResult(
        headers=["k", "rate", "seed", "items", "mu", "ff_cost", "opt_lb", "ratio", "ratio_l2", "bound_k"]
    )
    ok = True
    l2_tightens = True
    for k in ks:
        for rate in arrival_rates:
            for seed in seeds:
                trace = generate_trace(
                    arrival_rate=rate,
                    horizon=horizon,
                    duration=Uniform(1.0, 12.0),
                    size=Uniform(1.0 / k, 1.0),
                    seed=seed,
                    name=f"large-k{k}",
                )
                if len(trace) == 0:
                    continue
                result = simulate(trace.items, FirstFit(), capacity=1.0)
                opt_lb = opt_total_lower_bound(trace.items, capacity=1.0)
                # Large items are where the Martello-Toth L2 sweep bites:
                # items above W/2 cannot share bins, so the LB tightens.
                opt_l2 = opt_total_l2_lower_bound(trace.items, capacity=1.0)
                ratio = float(result.total_cost() / opt_lb)
                ratio_l2 = float(result.total_cost() / max(opt_lb, opt_l2))
                ok = ok and ratio <= k * (1 + 1e-9)
                l2_tightens = l2_tightens and ratio_l2 <= ratio + 1e-12
                table.add(
                    {
                        "k": k,
                        "rate": rate,
                        "seed": seed,
                        "items": len(trace),
                        "mu": float(trace_stats(trace.items).mu),
                        "ff_cost": float(result.total_cost()),
                        "opt_lb": float(opt_lb),
                        "ratio": ratio,
                        "ratio_l2": ratio_l2,
                        "bound_k": float(k),
                    }
                )
    return ExperimentResult(
        name="thm3-large-items",
        title="Theorem 3: First Fit on large items (all sizes ≥ W/k)",
        table=table,
        checks=[
            ClaimCheck(
                claim="FF_total ≤ k·OPT_total on every large-item trace",
                holds=ok,
            ),
            ClaimCheck(
                claim="the L2 sweep never loosens the measured ratio "
                "(and typically tightens it on large items)",
                holds=l2_tightens,
            ),
        ],
        notes=[
            "Theorem 3 is proved via bounds (b.1)+(b.3) and holds for any "
            "packing algorithm; ratios here use the pointwise OPT lower "
            "bound, so they overestimate the true ratio."
        ],
    )
