"""Experiment E19 (extension) — capped fleets: the cost/QoS frontier.

The paper's unlimited-bin model is the cloud's promise; quotas and budgets
break it.  This experiment sweeps the fleet cap on gaming days and maps
the frontier between rental cost and player experience (mean lobby wait
under queueing, drop rate under blocking).

Expected shape (checked): waits and drops fall monotonically as the cap
grows, hitting zero once the cap exceeds the unlimited-fleet peak; the
total *server-time* under a tight queueing cap is no higher than
unlimited (queueing smooths the load — players pay the price instead).
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import FirstFit
from ..analysis.sweep import SweepResult
from ..cloud.finite_fleet import serve_with_fleet_limit
from ..core.simulator import simulate
from ..workloads.cloud_gaming import generate_gaming_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "capacity-cap",
    display="Extension: finite fleets",
    description="Fleet caps: rental cost vs lobby waits (queue) and drops (block)",
)
def run(
    caps: Sequence[int] = (5, 10, 20, 40, 1000),
    seeds: Sequence[int] = (0, 1),
    horizon: float = 12 * 60.0,
) -> ExperimentResult:
    table = SweepResult(
        headers=[
            "seed",
            "cap",
            "mean_wait",
            "max_wait",
            "queue_rate",
            "drop_rate",
            "cost(queue)",
            "peak",
        ]
    )
    waits_monotone = True
    drops_monotone = True
    smoothing_ok = True
    zero_at_large_cap = True
    for seed in seeds:
        trace = generate_gaming_trace(seed=seed, horizon=horizon)
        unlimited = simulate(trace.items, FirstFit())
        unlimited_cost = float(unlimited.total_cost())
        prev_wait = float("inf")
        prev_drop = 1.1
        for cap in caps:
            queued = serve_with_fleet_limit(trace.items, FirstFit(), fleet_limit=cap)
            dropped = serve_with_fleet_limit(
                trace.items, FirstFit(), fleet_limit=cap, policy="drop"
            )
            waits_monotone = waits_monotone and queued.mean_wait <= prev_wait + 1e-9
            drops_monotone = drops_monotone and dropped.drop_rate <= prev_drop + 1e-9
            prev_wait, prev_drop = queued.mean_wait, dropped.drop_rate
            if cap >= unlimited.max_bins_used:
                zero_at_large_cap = (
                    zero_at_large_cap
                    and queued.mean_wait == 0
                    and dropped.drop_rate == 0
                )
            if cap <= min(caps):
                smoothing_ok = smoothing_ok and float(queued.total_cost) <= (
                    unlimited_cost * (1 + 1e-9)
                )
            table.add(
                {
                    "seed": seed,
                    "cap": cap,
                    "mean_wait": queued.mean_wait,
                    "max_wait": float(queued.max_wait),
                    "queue_rate": queued.queue_rate,
                    "drop_rate": dropped.drop_rate,
                    "cost(queue)": float(queued.total_cost),
                    "peak": queued.peak_servers,
                }
            )
    return ExperimentResult(
        name="capacity-cap",
        title="Finite fleets: the rental-cost / player-experience frontier",
        table=table,
        checks=[
            ClaimCheck(
                claim="mean lobby wait falls monotonically with the fleet cap",
                holds=waits_monotone,
            ),
            ClaimCheck(
                claim="drop rate falls monotonically with the fleet cap",
                holds=drops_monotone,
            ),
            ClaimCheck(
                claim="caps at or above the unlimited peak give zero waits and drops",
                holds=zero_at_large_cap,
            ),
            ClaimCheck(
                claim="the tightest queueing cap spends no more server-time than "
                "the unlimited fleet (queueing smooths load at the players' expense)",
                holds=smoothing_ok,
            ),
        ],
    )
