"""Experiment E12 (extension) — constrained DBP: the cost of locality.

The paper's future-work problem: requests restricted to zone subsets.
Sweeps constraint tightness (``reach`` on a region ring) and zone policies,
measuring total cost against the *unconstrained* OPT lower bound (valid a
fortiori for the constrained optimum).

Expected shape (checked): cost decreases monotonically-ish as constraints
loosen; ``reach = num_zones`` matches the unconstrained algorithm exactly;
spreading new bins across zones (least-open-bins) loses to consolidating
policies under tight constraints.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import FirstFit
from ..analysis.sweep import SweepResult
from ..constrained.algorithms import (
    FIRST_ALLOWED,
    LEAST_OPEN_BINS,
    ConstrainedBestFit,
    ConstrainedFirstFit,
)
from ..constrained.workload import RegionTopology, generate_constrained_trace
from ..core.item import Item
from ..core.simulator import simulate
from ..opt.lower_bounds import opt_total_lower_bound
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _strip_constraints(items) -> list[Item]:
    return [
        Item(
            arrival=it.arrival,
            departure=it.departure,
            size=it.size,
            item_id=it.item_id,
            tag=None,
        )
        for it in items
    ]


@register_experiment(
    "constrained-dbp",
    display="Section 5 (future work)",
    description="Zone-constrained DBP: total cost vs constraint tightness (reach)",
)
def run(
    num_zones: int = 4,
    reaches: Sequence[int] | None = None,
    seeds: Sequence[int] = (0, 1),
    arrival_rate: float = 0.4,
    horizon: float = 12 * 60.0,
) -> ExperimentResult:
    reaches = list(reaches) if reaches is not None else list(range(1, num_zones + 1))
    table = SweepResult(
        headers=["seed", "reach", "algorithm", "servers", "cost", "vs_opt_lb", "vs_unconstrained_ff"]
    )
    monotone_ok = True
    full_reach_matches = True
    for seed in seeds:
        # One fixed arrival pattern per seed; only the allow-sets vary with
        # reach, so rows are comparable down the column.
        cff_costs = []
        for reach in reaches:
            topo = RegionTopology.ring(num_zones, reach)
            trace = generate_constrained_trace(
                topology=topo,
                arrival_rate=arrival_rate,
                horizon=horizon,
                seed=seed,
            )
            plain_items = _strip_constraints(trace.items)
            opt_lb = opt_total_lower_bound(plain_items, capacity=1.0)
            ff_unconstrained = simulate(plain_items, FirstFit(), capacity=1.0).total_cost()
            for algo in (
                ConstrainedFirstFit(FIRST_ALLOWED),
                ConstrainedBestFit(FIRST_ALLOWED),
                ConstrainedFirstFit(LEAST_OPEN_BINS),
            ):
                result = simulate(trace.items, algo, capacity=1.0)
                cost = float(result.total_cost())
                label = f"{algo.name}[{algo.zone_policy}]"
                table.add(
                    {
                        "seed": seed,
                        "reach": reach,
                        "algorithm": label,
                        "servers": result.num_bins_used,
                        "cost": cost,
                        "vs_opt_lb": cost / float(opt_lb),
                        "vs_unconstrained_ff": cost / float(ff_unconstrained),
                    }
                )
                if algo.name == "constrained-first-fit" and algo.zone_policy == FIRST_ALLOWED:
                    cff_costs.append(cost)
                    if reach == num_zones:
                        # Full reach + first-allowed zone = plain First Fit:
                        # same cost (assignments may renumber zones only).
                        full_reach_matches = (
                            full_reach_matches
                            and abs(cost - float(ff_unconstrained)) < 1e-6 * max(1.0, cost)
                        )
        # Tightest constraints must not be cheaper than the loosest.
        monotone_ok = monotone_ok and cff_costs[0] >= cff_costs[-1] * (1 - 1e-9)
    return ExperimentResult(
        name="constrained-dbp",
        title="Constrained DBP: rental cost vs zone reach "
        f"({num_zones} regions on a ring)",
        table=table,
        checks=[
            ClaimCheck(
                claim="full reach reproduces unconstrained First Fit cost exactly",
                holds=full_reach_matches,
            ),
            ClaimCheck(
                claim="tightest constraints cost at least as much as unconstrained",
                holds=monotone_ok,
            ),
        ],
        notes=[
            "vs_opt_lb uses the *unconstrained* OPT lower bound, which is also a "
            "lower bound for the constrained optimum.",
        ],
    )
