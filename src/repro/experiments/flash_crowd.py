"""Experiment E18 (extension) — flash crowds: burstiness vs cost and peaks.

Cloud gaming's "constant workload fluctuation" (Section 1) is worse than
Poisson: launches and evening surges are bursty.  This experiment holds the
*mean* arrival rate fixed and dials burstiness up through an MMPP
(low/high alternating intensity), measuring total rental cost, peak fleet
size, and the MinTotal-vs-MaxBins tension.

Expected shape (checked): at equal mean load, burstier arrivals need a
strictly larger peak fleet; total cost also rises (idle tails after each
spike), but much more gently than the peak does — the exact reason the
paper bills by time instead of by peak.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import FirstFit
from ..analysis.sweep import SweepResult
from ..core.simulator import simulate
from ..opt.lower_bounds import opt_total_lower_bound
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_mmpp_trace, generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "flash-crowd",
    display="Extension: burstiness",
    description="MMPP flash crowds at fixed mean rate: peak fleet vs total cost",
)
def run(
    mean_rate: float = 3.0,
    burst_factors: Sequence[float] = (1.0, 3.0, 9.0),
    seeds: Sequence[int] = (0, 1, 2),
    horizon: float = 300.0,
    mean_dwell: float = 25.0,
) -> ExperimentResult:
    table = SweepResult(
        headers=["burst_factor", "seed", "items", "peak_bins", "cost", "vs_opt_lb"]
    )
    mean_peak: dict[float, float] = {}
    mean_cost: dict[float, float] = {}
    common = dict(
        duration=Clipped(Exponential(4.0), 1.0, 10.0),
        size=Uniform(0.1, 0.5),
    )
    for factor in burst_factors:
        peaks, costs = [], []
        for seed in seeds:
            if factor == 1.0:
                trace = generate_trace(
                    arrival_rate=mean_rate, horizon=horizon, seed=seed, **common
                )
            else:
                # Two states with mean (lo+hi)/2 = mean_rate, hi/lo = factor².
                lo = 2 * mean_rate / (1 + factor)
                hi = factor * lo
                trace = generate_mmpp_trace(
                    rates=(lo, hi),
                    mean_dwell=mean_dwell,
                    horizon=horizon,
                    seed=seed,
                    **common,
                )
            if not len(trace):
                continue
            result = simulate(trace.items, FirstFit())
            cost = float(result.total_cost())
            lb = float(opt_total_lower_bound(trace.items))
            peaks.append(result.max_bins_used)
            costs.append(cost / len(trace))  # per-session: MMPP trace sizes vary
            table.add(
                {
                    "burst_factor": factor,
                    "seed": seed,
                    "items": len(trace),
                    "peak_bins": result.max_bins_used,
                    "cost": cost,
                    "vs_opt_lb": cost / lb,
                }
            )
        mean_peak[factor] = sum(peaks) / len(peaks)
        mean_cost[factor] = sum(costs) / len(costs)

    lo_f, hi_f = burst_factors[0], burst_factors[-1]
    peak_growth = mean_peak[hi_f] / mean_peak[lo_f]
    return ExperimentResult(
        name="flash-crowd",
        title="Flash crowds at fixed mean load (First Fit)",
        table=table,
        checks=[
            ClaimCheck(
                claim="burstier arrivals need a strictly larger peak fleet",
                holds=mean_peak[lo_f] < mean_peak[hi_f],
                detail=f"mean peak {mean_peak[lo_f]:.1f} → {mean_peak[hi_f]:.1f} "
                f"({peak_growth:.2f}×)",
            ),
            ClaimCheck(
                claim="peak fleet grows proportionally faster than per-session "
                "cost (billing by time beats provisioning for the peak)",
                holds=peak_growth > mean_cost[hi_f] / mean_cost[lo_f],
                detail=f"peak ×{peak_growth:.2f} vs per-session cost ×"
                f"{mean_cost[hi_f] / mean_cost[lo_f]:.2f}",
            ),
        ],
    )
