"""Experiment E16 (extension) — the migration-budget-vs-cost frontier.

Berndt–Jansen–Klein's fully-dynamic model prices repacking with a
*migration factor* β: every insertion of size ``s`` grants ``β·s`` of
moved-size budget.  This experiment sweeps a budget grid × algorithm ×
workload regime × seed through the engine's bounded-migration dispatch
mode (:class:`repro.renting.BoundedRepacker` riding on
:func:`~repro.core.streaming.simulate_stream`) and charts how rental cost
falls as the budget grows — the frontier between the paper's
no-migration world (β = 0) and repack-at-will.

Rows are byte-stable and the sweep is parallel-runner compatible: the
``workers`` parameter shards grid points via
:func:`repro.analysis.sweep.run_sweep`, and the CI ``ratio-smoke`` job
byte-compares the 2-worker and 4-worker JSON artifacts.

Expected shape (checked): β = 0 is *exactly* the plain run (no silent
repacking), costs never beat the pointwise OPT lower bound, and on the
aggregate the largest budget is no worse than no budget.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..algorithms import get_algorithm
from ..analysis.sweep import SweepResult, grid, run_sweep
from ..core.streaming import simulate_stream
from ..opt.lower_bounds import pointwise_lower_bound
from ..renting import BoundedRepacker
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_equal_duration_trace, generate_trace
from ..workloads.trace import Trace
from .registry import ClaimCheck, ExperimentResult, register_experiment

#: The default migration-factor grid (β): no budget → generous budget.
BUDGET_GRID = (0.0, 0.25, 1.0, 4.0)

#: Workload regimes on the grid; ``equal-duration`` is the Masoori et al.
#: home regime (μ = 1), ``general`` the paper's mixed-duration setting.
WORKLOADS = ("general", "equal-duration")


def frontier_trace(workload: str, seed: int, *, rate: float, horizon: float) -> Trace:
    """The seeded trace of one grid point (shared with the smoke tests)."""
    if workload == "general":
        return generate_trace(
            arrival_rate=rate,
            horizon=horizon,
            duration=Clipped(Exponential(3.0), 1.0, 9.0),
            size=Uniform(0.1, 0.7),
            seed=seed,
        )
    if workload == "equal-duration":
        return generate_equal_duration_trace(
            arrival_rate=rate,
            horizon=horizon,
            duration=4.0,
            size=Uniform(0.1, 0.7),
            seed=seed,
        )
    raise ValueError(f"unknown workload regime {workload!r}")


def _frontier_point(
    *,
    workload: str,
    algorithm: str,
    factor: float,
    seed: int,
    rate: float,
    horizon: float,
) -> dict[str, Any]:
    """One row: one (regime, algorithm, budget, seed) cell of the frontier.

    Module-level and addressed by registry names only, so sharded sweeps
    pickle the call cleanly.
    """
    trace = frontier_trace(workload, seed, rate=rate, horizon=horizon)
    repacker = BoundedRepacker(factor=factor)
    summary = simulate_stream(iter(trace.items), get_algorithm(algorithm), repacker=repacker)
    plain = simulate_stream(iter(trace.items), get_algorithm(algorithm))
    return {
        "workload": workload,
        "algorithm": algorithm,
        "factor": factor,
        "seed": seed,
        "items": len(trace),
        "cost": float(summary.total_cost),
        "bins": summary.num_bins_used,
        "migrations": repacker.migrations_done,
        "size_moved": float(repacker.size_moved),
        "bins_emptied": repacker.bins_emptied,
        "plain_cost": float(plain.total_cost),
        "opt_lb": float(pointwise_lower_bound(trace.items)),
        "cost_vs_plain": float(summary.total_cost) / float(plain.total_cost),
    }


@register_experiment(
    "migration-frontier",
    display="Related work (bounded repacking, arXiv 1411.0960)",
    description="Migration budget grid × algorithm × workload regime × seed: "
    "rental cost as the BJK migration factor grows",
)
def run(
    factors: Sequence[float] = BUDGET_GRID,
    algorithms: Sequence[str] = ("first-fit", "best-fit"),
    workloads: Sequence[str] = WORKLOADS,
    seeds: Sequence[int] = (0, 1, 2),
    rate: float = 6.0,
    horizon: float = 80.0,
    workers: int | None = None,
) -> ExperimentResult:
    points = [
        dict(point, rate=rate, horizon=horizon)
        for point in grid(
            workload=list(workloads),
            algorithm=list(algorithms),
            factor=list(factors),
            seed=list(seeds),
        )
    ]
    headers = [
        "workload",
        "algorithm",
        "factor",
        "seed",
        "items",
        "cost",
        "bins",
        "migrations",
        "size_moved",
        "bins_emptied",
        "plain_cost",
        "opt_lb",
        "cost_vs_plain",
    ]
    swept = run_sweep(_frontier_point, points, headers=headers, workers=workers)
    table = SweepResult(headers=headers)
    table.rows = swept.rows

    def cell(row: list[Any], name: str) -> Any:
        return row[headers.index(name)]

    zero_exact = all(
        cell(r, "cost") == cell(r, "plain_cost") and cell(r, "migrations") == 0
        for r in table.rows
        if cell(r, "factor") == 0.0
    )
    above_lb = all(cell(r, "cost") >= cell(r, "opt_lb") * (1 - 1e-9) for r in table.rows)
    by_factor: dict[float, list[float]] = {}
    for r in table.rows:
        by_factor.setdefault(cell(r, "factor"), []).append(cell(r, "cost_vs_plain"))
    means = {f: sum(v) / len(v) for f, v in by_factor.items()}
    lo, hi = min(means), max(means)
    return ExperimentResult(
        name="migration-frontier",
        title="Migration-budget-vs-cost frontier (BJK migration factor β)",
        table=table,
        checks=[
            ClaimCheck(
                claim="β = 0 is byte-exact the plain no-migration run",
                holds=zero_exact,
            ),
            ClaimCheck(
                claim="no budget level beats the pointwise OPT lower bound",
                holds=above_lb,
            ),
            ClaimCheck(
                claim="mean cost ratio at the largest budget ≤ at zero budget",
                holds=means[hi] <= means[lo],
                detail=", ".join(f"β={f:g}: {m:.4f}" for f, m in sorted(means.items())),
            ),
        ],
        notes=[
            "cost_vs_plain < 1 quantifies what bounded migration buys; the "
            "paper's model is the β = 0 column."
        ],
    )
