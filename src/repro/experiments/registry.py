"""Experiment registry: every paper display (table/figure/theorem) is one
named, parameterised, reproducible experiment.

Experiments return an :class:`ExperimentResult` — a titled table of rows
plus a list of claim checks — and are runnable from the CLI
(``python -m repro run thm1-anyfit``) and from the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..analysis.sweep import SweepResult

__all__ = [
    "ClaimCheck",
    "ExperimentResult",
    "register_experiment",
    "get_experiment",
    "available_experiments",
    "experiment_info",
]


@dataclass(frozen=True, slots=True)
class ClaimCheck:
    """One paper claim evaluated on measured data."""

    claim: str
    holds: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{status}] {self.claim}{suffix}"


@dataclass
class ExperimentResult:
    """The output of one experiment run."""

    name: str
    title: str
    table: SweepResult
    checks: list[ClaimCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        return all(c.holds for c in self.checks)

    def render(self, *, precision: int = 4) -> str:
        parts = [self.table.to_table(title=self.title, precision=precision)]
        if self.checks:
            parts.append("")
            parts.extend(str(c) for c in self.checks)
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)


@dataclass(frozen=True, slots=True)
class _Entry:
    fn: Callable[..., ExperimentResult]
    display: str  # which paper display it reproduces
    description: str


_REGISTRY: dict[str, _Entry] = {}


def register_experiment(
    name: str, *, display: str, description: str
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Decorator registering an experiment ``run`` function."""

    def deco(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        _REGISTRY[name] = _Entry(fn=fn, display=display, description=description)
        return fn

    return deco


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment runner by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name].fn
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None


def available_experiments() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def experiment_info(name: str) -> dict[str, Any]:
    _ensure_loaded()
    entry = _REGISTRY[name]
    return {"name": name, "display": entry.display, "description": entry.description}


def _ensure_loaded() -> None:
    """Import every experiment module so registration side effects run."""
    from . import (  # noqa: F401
        anomalies_experiment,
        bounds_sandwich,
        capacity_cap,
        clairvoyance_gap,
        classic_dbp,
        constrained_dbp,
        engine_scaling,
        fault_tolerance,
        flash_crowd,
        fleet_mix,
        mff_experiment,
        migration_gap,
        observability,
        offline_gaps,
        prediction_noise,
        synthetic_eval,
        thm1_anyfit,
        thm2_bestfit,
        thm3_large_items,
        thm4_small_items,
        thm5_general_ff,
    )
