"""Experiment registry: every paper display (table/figure/theorem) is one
named, parameterised, reproducible experiment.

Experiments return an :class:`ExperimentResult` — a titled table of rows
plus a list of claim checks — and are runnable from the CLI
(``python -m repro run thm1-anyfit``) and from the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..analysis.sweep import SweepResult
from ..core.validation import EmptySweepError

__all__ = [
    "ClaimCheck",
    "ExperimentResult",
    "register_experiment",
    "get_experiment",
    "available_experiments",
    "experiment_info",
    "run_experiments",
]


@dataclass(frozen=True, slots=True)
class ClaimCheck:
    """One paper claim evaluated on measured data."""

    claim: str
    holds: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{status}] {self.claim}{suffix}"


@dataclass
class ExperimentResult:
    """The output of one experiment run."""

    name: str
    title: str
    table: SweepResult
    checks: list[ClaimCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        return all(c.holds for c in self.checks)

    def render(self, *, precision: int = 4) -> str:
        parts = [self.table.to_table(title=self.title, precision=precision)]
        if self.checks:
            parts.append("")
            parts.extend(str(c) for c in self.checks)
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)


@dataclass(frozen=True, slots=True)
class _Entry:
    fn: Callable[..., ExperimentResult]
    display: str  # which paper display it reproduces
    description: str
    deterministic: bool  # rows are a pure function of parameters (no wall clock)


_REGISTRY: dict[str, _Entry] = {}


def register_experiment(
    name: str, *, display: str, description: str, deterministic: bool = True
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Decorator registering an experiment ``run`` function.

    ``deterministic=False`` marks experiments whose *rows* include wall-clock
    measurements (throughput columns); their claim checks must still be
    deterministic.  The parallel differential suite byte-compares full
    results only for deterministic experiments.
    """

    def deco(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        _REGISTRY[name] = _Entry(
            fn=fn, display=display, description=description, deterministic=deterministic
        )
        return fn

    return deco


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment runner by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name].fn
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None


def available_experiments() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def experiment_info(name: str) -> dict[str, Any]:
    _ensure_loaded()
    entry = _REGISTRY[name]
    return {
        "name": name,
        "display": entry.display,
        "description": entry.description,
        "deterministic": entry.deterministic,
    }


def _run_experiment_task(name: str) -> ExperimentResult:
    """Worker-side shard body: run one registered experiment by name.

    Module-level (hence picklable) and addressed by registry *name*, so a
    spawned worker re-imports the catalogue and resolves the same function
    the coordinator would — no code objects cross the process boundary.

    Records deterministic per-experiment telemetry into the active
    per-task registry (:func:`repro.parallel.task_registry`), so a batch
    run's merged fleet registry carries real counters — rows produced,
    claims checked/failed — byte-identical at any worker count.
    """
    result = get_experiment(name)()
    from ..parallel.taskmetrics import task_registry

    registry = task_registry()
    if registry is not None:
        registry.counter(
            "dbp_experiments_completed_total", "Experiments completed"
        ).inc()
        registry.counter(
            "dbp_experiment_rows_total", "Table rows produced by experiments"
        ).inc(len(result.table.rows))
        registry.counter(
            "dbp_claims_checked_total", "Paper claims evaluated"
        ).inc(len(result.checks))
        registry.counter(
            "dbp_claims_failed_total", "Paper claims that FAILED"
        ).inc(sum(1 for c in result.checks if not c.holds))
    return result


def run_experiments(
    names: Sequence[str] | None = None,
    *,
    parallel: int | None = None,
    timeout: float | None = None,
    retries: int = 1,
    chunk_size: int | None = None,
    metrics: Any = None,
    on_progress: Callable[[int, int, int], None] | None = None,
    on_task_registry: Callable[[int, dict], None] | None = None,
) -> list[ExperimentResult]:
    """Run a batch of experiments, optionally sharded across processes.

    ``names`` defaults to the whole catalogue (in registry order).
    ``parallel`` is the worker count; ``None``/``0``/``1`` runs serially in
    this process.  Every experiment is deterministic given its default
    parameters, and results are returned in ``names`` order whatever the
    completion order, so the parallel path returns results equal to the
    serial path — the differential suite byte-compares their JSON exports.

    Unknown names raise ``KeyError`` up front (before any worker starts);
    worker failures surface as :class:`repro.parallel.ShardExecutionError`
    with the experiment name attached to each failure record.

    ``on_progress(completed, total, index)`` and
    ``on_task_registry(index, state)`` follow the
    :func:`repro.parallel.run_tasks` contract on both paths: serial
    experiments run inside their own per-task registry scopes, so a
    registry merge fed from the callback is byte-identical at any
    ``parallel`` value.
    """
    batch = list(names) if names is not None else available_experiments()
    if not batch:
        raise EmptySweepError("experiment batch")
    for name in batch:
        get_experiment(name)  # fail fast on unknown names
    if parallel is not None and parallel > 1:
        from ..parallel.pool import run_tasks

        return run_tasks(
            _run_experiment_task,
            batch,
            workers=parallel,
            timeout=timeout,
            retries=retries,
            chunk_size=chunk_size,
            metrics=metrics,
            on_progress=on_progress,
            on_task_registry=on_task_registry,
        )
    from ..parallel.taskmetrics import export_if_used, task_registry_scope

    results = []
    for index, name in enumerate(batch):
        with task_registry_scope() as registry:
            results.append(_run_experiment_task(name))
        state = export_if_used(registry)
        if state is not None and on_task_registry is not None:
            on_task_registry(index, state)
        if on_progress is not None:
            on_progress(index + 1, len(batch), index)
    return results


def _ensure_loaded() -> None:
    """Import every experiment module so registration side effects run."""
    from . import (  # noqa: F401
        anomalies_experiment,
        bounds_sandwich,
        capacity_cap,
        chaos_experiment,
        clairvoyance_gap,
        classic_dbp,
        constrained_dbp,
        engine_scaling,
        fault_tolerance,
        flash_crowd,
        fleet_mix,
        mff_experiment,
        migration_frontier,
        migration_gap,
        observability,
        offline_gaps,
        prediction_noise,
        synthetic_eval,
        thm1_anyfit,
        thm2_bestfit,
        thm3_large_items,
        thm4_small_items,
        thm5_general_ff,
        vector_dbp,
    )
