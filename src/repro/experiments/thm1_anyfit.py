"""Experiment E3 — Theorem 1 / Figure 2: Any Fit's μ lower bound.

Runs the adaptive Figure 2 adversary against every Any Fit member in the
library over a (k, μ) grid.  For each point the measured ratio must equal
the paper's closed form ``kμ/(k+μ−1)`` *exactly* (Fraction arithmetic), and
the series must climb towards μ as k grows.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..adversaries.anyfit_lower_bound import run_theorem1_adversary
from ..algorithms import BestFit, FirstFit, LastFit, PackingAlgorithm, WorstFit
from ..analysis.sweep import SweepResult
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _default_algorithms() -> list[PackingAlgorithm]:
    return [FirstFit(), BestFit(), WorstFit(), LastFit()]


@register_experiment(
    "thm1-anyfit",
    display="Theorem 1 / Figure 2",
    description="Any Fit lower bound: measured ratio equals kμ/(k+μ−1) → μ",
)
def run(
    ks: Sequence[int] = (2, 5, 10, 25, 50),
    mus: Sequence[int] = (2, 8, 32),
    algorithms: Sequence[PackingAlgorithm] | None = None,
) -> ExperimentResult:
    algorithms = list(algorithms) if algorithms is not None else _default_algorithms()
    table = SweepResult(
        headers=["algorithm", "k", "mu", "measured_ratio", "predicted", "exact_match"]
    )
    checks: list[ClaimCheck] = []
    all_exact = True
    monotone = True
    for algo in algorithms:
        prev_ratio: Fraction | None = None
        for mu in mus:
            for k in ks:
                out = run_theorem1_adversary(algo, k=k, mu=mu)
                exact = out.matches_prediction and out.measured_ratio == out.predicted_ratio
                all_exact = all_exact and exact
                table.add(
                    {
                        "algorithm": algo.name,
                        "k": k,
                        "mu": mu,
                        "measured_ratio": float(out.measured_ratio),
                        "predicted": float(out.predicted_ratio),
                        "exact_match": exact,
                    }
                )
        # Fixed μ = last one: ratio should increase with k towards μ.
        series = [
            run_theorem1_adversary(algo, k=k, mu=mus[-1]).measured_ratio for k in ks
        ]
        monotone = monotone and all(a < b for a, b in zip(series, series[1:]))
        if not (series[-1] < Fraction(mus[-1])):
            monotone = False

    checks.append(
        ClaimCheck(
            claim="measured ratio equals kμ/(k+μ−1) exactly for every Any Fit member",
            holds=all_exact,
        )
    )
    checks.append(
        ClaimCheck(
            claim="at fixed μ the ratio grows with k and stays below μ (→ μ)",
            holds=monotone,
        )
    )
    return ExperimentResult(
        name="thm1-anyfit",
        title="Theorem 1 (Figure 2): Any Fit competitive-ratio lower bound",
        table=table,
        checks=checks,
        notes=[
            "OPT bracket is tight on every instance (lower == upper), so the "
            "measured ratios are exact, not estimates."
        ],
    )
