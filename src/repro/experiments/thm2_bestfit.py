"""Experiment E4 — Theorem 2 / Figure 3: Best Fit is unbounded.

Runs the adaptive Figure 3 trap for growing ``k`` at fixed μ; the measured
Best Fit ratio must clear the paper's ``k/2`` floor and grow without bound.
As a control, First Fit is run on the *same* item lists Best Fit produced:
its ratio must stay within Theorem 5's ``2μ + 13``.
"""

from __future__ import annotations

from typing import Sequence

from ..adversaries.bestfit_unbounded import run_theorem2_adversary
from ..algorithms import FirstFit, ModifiedBestFit
from ..analysis.bounds import theorem5_bound
from ..analysis.sweep import SweepResult
from ..core.metrics import trace_stats
from ..core.simulator import simulate
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "thm2-bestfit",
    display="Theorem 2 / Figure 3",
    description="Best Fit unbounded: ratio ≥ k/2 grows with k while FF stays ≤ 2μ+13",
)
def run(
    ks: Sequence[int] = (3, 5, 8, 12),
    mu: int = 4,
    n_iterations: int | None = None,
) -> ExperimentResult:
    table = SweepResult(
        headers=["k", "n", "mu_hat", "bf_ratio", "mbf_ratio", "k/2", "ff_ratio", "ff_bound_2mu+13"]
    )
    checks: list[ClaimCheck] = []
    bf_ratios = []
    floors_ok = True
    ff_ok = True
    mbf_trapped_ok = True
    for k in ks:
        # Theorem 2 needs n ≳ (k−1)/μ for the k/2 floor; use a safety factor.
        n = n_iterations if n_iterations is not None else max(2, 2 * (k - 1) // mu + 2)
        out = run_theorem2_adversary(k=k, mu=mu, n_iterations=n)
        bf_ratio = float(out.measured_ratio_lower)
        bf_ratios.append(bf_ratio)
        floors_ok = floors_ok and bf_ratio >= k / 2

        # Controls on the very same items (replay preserves the adversary's
        # exact arrival order): First Fit escapes; Modified Best Fit does
        # not — the single-tiny-size trap lives inside one size class.
        ff_result = simulate(out.result.items, FirstFit(), capacity=1)
        mbf_result = simulate(out.result.items, ModifiedBestFit(), capacity=1)
        mbf_ratio = float(mbf_result.total_cost() / out.opt.upper)
        mbf_trapped_ok = mbf_trapped_ok and abs(mbf_ratio - bf_ratio) < 1e-9
        mu_hat = float(trace_stats(out.result.items).mu)
        ff_ratio = float(ff_result.total_cost() / out.opt.lower)
        bound = theorem5_bound(mu_hat)
        ff_ok = ff_ok and ff_ratio <= bound
        table.add(
            {
                "k": k,
                "n": n,
                "mu_hat": mu_hat,
                "bf_ratio": bf_ratio,
                "mbf_ratio": mbf_ratio,
                "k/2": k / 2,
                "ff_ratio": ff_ratio,
                "ff_bound_2mu+13": bound,
            }
        )
    checks.append(
        ClaimCheck(
            claim="Best Fit ratio ≥ k/2 on the Figure 3 trap, for every k",
            holds=floors_ok,
        )
    )
    checks.append(
        ClaimCheck(
            claim="Best Fit ratio grows monotonically with k (unbounded)",
            holds=all(a < b for a, b in zip(bf_ratios, bf_ratios[1:])),
        )
    )
    checks.append(
        ClaimCheck(
            claim="First Fit on the same instances respects Theorem 5 (≤ 2μ+13)",
            holds=ff_ok,
        )
    )
    checks.append(
        ClaimCheck(
            claim="size classification alone does not rescue Best Fit: "
            "Modified Best Fit pays exactly the trap cost",
            holds=mbf_trapped_ok,
        )
    )
    return ExperimentResult(
        name="thm2-bestfit",
        title="Theorem 2 (Figure 3): Best Fit has no bounded competitive ratio",
        table=table,
        checks=checks,
        notes=[
            "mu_hat is the realized max/min interval ratio (μ + O(δ), see the "
            "adversary's docstring); ratios are measured against the OPT upper "
            "bound, i.e. they are conservative lower estimates."
        ],
    )
