"""Experiment E13 (extension) — the value of knowing departure times.

The paper's model hides departures; interval scheduling (Section 2's
closest relative) reveals them.  This experiment measures the gap: blind
FF/BF vs departure-aware MinExpand/DurationAligned on workloads with
increasing duration variance (higher μ = more to know).

Expected shape (checked): averaged over seeds, the best clairvoyant policy
is at least as cheap as blind First Fit, and its advantage does not shrink
when duration variance grows.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import BestFit, FirstFit
from ..analysis.sweep import SweepResult
from ..clairvoyant.algorithms import DurationAlignedFit, MinExpandFit, simulate_clairvoyant
from ..core.simulator import simulate
from ..opt.lower_bounds import opt_total_lower_bound
from ..workloads.distributions import BoundedPareto, Uniform
from ..workloads.generators import generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "clairvoyance-gap",
    display="Section 2 (interval-scheduling contrast)",
    description="Blind FF/BF vs departure-aware packing across duration spreads",
)
def run(
    mu_levels: Sequence[float] = (2.0, 10.0, 50.0),
    seeds: Sequence[int] = (0, 1, 2),
    arrival_rate: float = 5.0,
    horizon: float = 150.0,
) -> ExperimentResult:
    table = SweepResult(
        headers=["mu_target", "seed", "algorithm", "cost", "vs_opt_lb"]
    )
    mean_blind: dict[float, float] = {}
    mean_aware: dict[float, float] = {}
    for mu in mu_levels:
        blind_costs: list[float] = []
        aware_costs: list[float] = []
        for seed in seeds:
            trace = generate_trace(
                arrival_rate=arrival_rate,
                horizon=horizon,
                duration=BoundedPareto(1.0, mu, alpha=1.2),
                size=Uniform(0.05, 0.6),
                seed=seed,
            )
            opt_lb = float(opt_total_lower_bound(trace.items, capacity=1.0))
            runs = [
                ("first-fit", lambda: simulate(trace.items, FirstFit())),
                ("best-fit", lambda: simulate(trace.items, BestFit())),
                (
                    "min-expand-fit",
                    lambda: simulate_clairvoyant(trace.items, MinExpandFit()),
                ),
                (
                    "duration-aligned-fit",
                    lambda: simulate_clairvoyant(trace.items, DurationAlignedFit()),
                ),
            ]
            per_algo = {}
            for name, runner in runs:
                cost = float(runner().total_cost())
                per_algo[name] = cost
                table.add(
                    {
                        "mu_target": mu,
                        "seed": seed,
                        "algorithm": name,
                        "cost": cost,
                        "vs_opt_lb": cost / opt_lb,
                    }
                )
            blind_costs.append(per_algo["first-fit"])
            aware_costs.append(min(per_algo["min-expand-fit"], per_algo["duration-aligned-fit"]))
        mean_blind[mu] = sum(blind_costs) / len(blind_costs)
        mean_aware[mu] = sum(aware_costs) / len(aware_costs)

    aware_wins = all(mean_aware[mu] <= mean_blind[mu] * (1 + 1e-9) for mu in mu_levels)
    gaps = [1 - mean_aware[mu] / mean_blind[mu] for mu in mu_levels]
    return ExperimentResult(
        name="clairvoyance-gap",
        title="What knowing departure times is worth (mean over seeds)",
        table=table,
        checks=[
            ClaimCheck(
                claim="the best departure-aware policy is ≤ blind First Fit on "
                "average at every duration spread",
                holds=aware_wins,
            ),
            ClaimCheck(
                claim="the clairvoyance advantage is positive at the widest spread",
                holds=gaps[-1] > 0,
                detail=f"mean savings by mu level: "
                + ", ".join(f"μ≈{mu}: {g:.1%}" for mu, g in zip(mu_levels, gaps)),
            ),
        ],
        notes=[
            "This quantifies the model distinction the paper draws from interval "
            "scheduling: departures-at-assignment is genuinely valuable information."
        ],
    )
