"""Fault-tolerance experiment: dispatch cost under server revocations.

Not a paper display — a robustness experiment for the cloud substrate the
paper targets.  Spot/preemptible game servers are revoked mid-session;
the dispatcher must re-place the evicted sessions online.  For each
algorithm and failure rate the same seeded session stream is served on
failure-prone servers (:mod:`repro.cloud.faults`) under both recovery
policies, and the run is accounted: revocations, evicted sessions, lost
and re-dispatched work, continuous and billed cost.

Two claims are checked:

* **zero-failure exactness** — with the injector disabled, the faulty
  dispatcher must reproduce the stock
  :func:`~repro.cloud.dispatcher.dispatch_stream` costs *exactly* (same
  event order, same floats): fault tolerance is free until a fault.
* **seeded determinism** — re-running any faulty row with the same seed
  yields a byte-identical :class:`~repro.cloud.faults.FaultReport`.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import BestFit, FirstFit, PackingAlgorithm
from ..analysis.sweep import SweepResult
from ..cloud.dispatcher import ServerType, dispatch_stream
from ..cloud.faults import (
    CRASH,
    RECONNECT,
    RESTART,
    FaultInjector,
    dispatch_faulty_stream,
)
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import stream_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _fleet() -> list[PackingAlgorithm]:
    return [FirstFit(), BestFit()]


def _sessions(n_items: int, seed: int):
    return dict(
        arrival_rate=6.0,
        duration=Clipped(Exponential(30.0), 5.0, 120.0),
        size=Uniform(0.2, 0.7),
        n_items=n_items,
        seed=seed,
    )


@register_experiment(
    "fault-tolerance",
    display="Fault tolerance",
    description="Dispatch cost under seeded server revocations: recovery "
    "policies, lost work, and zero-failure exactness",
)
def run(
    n_items: int = 2000,
    seed: int = 0,
    rates: Sequence[float] = (0.0, 0.01, 0.03),
    model: str = CRASH,
    fault_seed: int = 0,
) -> ExperimentResult:
    table = SweepResult(
        headers=[
            "algorithm",
            "rate",
            "recovery",
            "failures",
            "evicted",
            "servers",
            "cost(cont)",
            "cost(billed)",
            "lost work",
            "redispatch work",
            "overhead",
        ]
    )
    server_type = ServerType()
    exact = True
    deterministic = True
    for algo_cls in (type(a) for a in _fleet()):
        baseline = dispatch_stream(
            stream_trace(**_sessions(n_items, seed)), algo_cls(), server_type=server_type
        )
        for rate in rates:
            recoveries = (RECONNECT,) if rate == 0 else (RECONNECT, RESTART)
            for recovery in recoveries:
                injector = FaultInjector(rate=rate, model=model, seed=fault_seed)
                report = dispatch_faulty_stream(
                    stream_trace(**_sessions(n_items, seed)),
                    algo_cls(),
                    injector=injector,
                    recovery=recovery,
                    server_type=server_type,
                )
                if rate == 0:
                    exact = exact and (
                        report.summary == baseline.summary
                        and report.continuous_cost == baseline.continuous_cost  # dbp: noqa[DBP003] -- rate=0 differential oracle: faulty path must replay the baseline bit-for-bit
                        and report.billed_cost == baseline.billed_cost  # dbp: noqa[DBP003] -- rate=0 differential oracle: float == is the assertion, not a tolerance shortcut
                        and report.num_servers_rented == baseline.num_servers_rented
                    )
                else:
                    rerun = dispatch_faulty_stream(
                        stream_trace(**_sessions(n_items, seed)),
                        algo_cls(),
                        injector=injector,
                        recovery=recovery,
                        server_type=server_type,
                    )
                    deterministic = deterministic and (
                        rerun.report.to_json() == report.report.to_json()
                    )
                table.add(
                    {
                        "algorithm": report.algorithm_name,
                        "rate": rate,
                        "recovery": report.report.recovery if rate else "-",
                        "failures": report.report.num_failures,
                        "evicted": report.report.sessions_evicted,
                        "servers": report.num_servers_rented,
                        "cost(cont)": float(report.continuous_cost),
                        "cost(billed)": float(report.billed_cost),
                        "lost work": float(report.report.lost_work),
                        "redispatch work": float(report.report.redispatch_work),
                        "overhead": float(report.continuous_cost)
                        / float(baseline.continuous_cost)
                        - 1.0,
                    }
                )
    checks = [
        ClaimCheck(
            claim="zero-failure faulty dispatch reproduces dispatch_stream "
            "costs exactly (summary, continuous and billed cost)",
            holds=exact,
        ),
        ClaimCheck(
            claim="same fault seed yields a byte-identical FaultReport",
            holds=deterministic,
        ),
    ]
    return ExperimentResult(
        name="fault-tolerance",
        title="Fault tolerance: dispatch cost under server revocations",
        table=table,
        checks=checks,
        notes=[
            "overhead = continuous cost over the fault-free run of the same "
            "stream; reconnect re-schedules remaining session time, restart "
            "replays sessions from scratch"
        ],
    )
