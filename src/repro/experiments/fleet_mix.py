"""Experiment E17 (extension) — heterogeneous fleets under bulk pricing.

Real clouds price capacity sub-linearly: a double-size GPU server rents for
less than double.  This experiment serves gaming days with (a) small-only,
(b) large-only, and (c) mixed fleets under several opening policies, and
reports the actual rental bill.

Expected shape (checked): under sub-linear pricing the large-only fleet
beats small-only at high load (bulk discount wins when servers run full);
the mixed fleet is never worse than the worse pure fleet; and every
packing's *billed* cost is at least rate-per-capacity × demand (the
heterogeneous analogue of bound b.1).
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.sweep import SweepResult
from ..cloud.flavors import Flavor, FlavorAwareFirstFit, fleet_bill
from ..core.metrics import total_demand
from ..core.simulator import simulate
from ..workloads.cloud_gaming import DiurnalPattern, generate_gaming_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _flavors() -> dict[str, list[Flavor]]:
    small = Flavor("gpu.small", capacity=1.0, rate=1.0)
    large = Flavor("gpu.large", capacity=2.0, rate=1.7)  # sub-linear: 1.7 < 2
    return {
        "small-only": [small],
        "large-only": [large],
        "mixed(cheapest)": [small, large],
    }


@register_experiment(
    "fleet-mix",
    display="Extension: heterogeneous fleets",
    description="Small vs large vs mixed VM flavours under sub-linear pricing",
)
def run(
    seeds: Sequence[int] = (0, 1),
    horizon: float = 18 * 60.0,
    base_rate: float = 0.4,
    amplitude: float = 1.6,
) -> ExperimentResult:
    table = SweepResult(
        headers=["seed", "fleet", "policy", "servers", "bill", "util", "bill_per_demand"]
    )
    floor_ok = True
    mixed_sane = True
    large_wins_by_seed: list[bool] = []
    for seed in seeds:
        trace = generate_gaming_trace(
            seed=seed,
            horizon=horizon,
            pattern=DiurnalPattern(base_rate=base_rate, amplitude=amplitude),
        )
        demand = float(total_demand(trace.items))
        best_density = min(f.rate_per_capacity for fl in _flavors().values() for f in fl)
        bills = {}
        for fleet_name, flavors in _flavors().items():
            policies = ("cheapest", "best-density") if len(flavors) > 1 else ("cheapest",)
            for policy in policies:
                algo = FlavorAwareFirstFit(flavors, open_policy=policy)
                result = simulate(
                    trace.items,
                    algo,
                    capacity=min(f.capacity for f in flavors),
                    max_bin_capacity=algo.max_capacity,
                )
                bill = float(fleet_bill(result, flavors).total)
                bills[(fleet_name, policy)] = bill
                # Heterogeneous b.1: you cannot pay less than the best
                # rate-per-capacity times the demand you must serve.
                floor_ok = floor_ok and bill >= best_density * demand * (1 - 1e-9)
                from ..core.metrics import utilization

                table.add(
                    {
                        "seed": seed,
                        "fleet": fleet_name,
                        "policy": policy,
                        "servers": result.num_bins_used,
                        "bill": bill,
                        "util": utilization(result),
                        "bill_per_demand": bill / demand,
                    }
                )
        small = bills[("small-only", "cheapest")]
        large = bills[("large-only", "cheapest")]
        best_mixed = min(
            bills[("mixed(cheapest)", "cheapest")],
            bills[("mixed(cheapest)", "best-density")],
        )
        large_wins_by_seed.append(large < small)
        mixed_sane = mixed_sane and best_mixed <= max(small, large) * (1 + 1e-9)
    return ExperimentResult(
        name="fleet-mix",
        title="Heterogeneous fleets: small vs large vs mixed under bulk pricing",
        table=table,
        checks=[
            ClaimCheck(
                claim="bill ≥ best rate-per-capacity × total demand "
                "(heterogeneous bound b.1) on every run",
                holds=floor_ok,
            ),
            ClaimCheck(
                claim="large-only beats small-only at this (high) load — the "
                "bulk discount pays when servers run full",
                holds=all(large_wins_by_seed),
            ),
            ClaimCheck(
                claim="the best mixed-fleet policy never loses to the worse "
                "pure fleet",
                holds=mixed_sane,
            ),
        ],
        notes=[
            "With the default catalogue every session fits the small flavour, "
            "so the mixed fleet's opening policy degenerates to one of the "
            "pure fleets — the interesting case (items larger than the small "
            "flavour forcing true mixing) is covered by the unit tests."
        ],
    )
