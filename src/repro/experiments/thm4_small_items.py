"""Experiment E6/E9 — Theorem 4 + Figures 4-7 + Table 2: small items.

On traces whose every size is below ``W/k``, First Fit's ratio is at most
``(k/(k−1))μ + 6k/(k−1) + 1``.  Beyond the ratio check, this experiment
runs the full proof decomposition on every packing and verifies all its
claims — equation (5), Features (f.1)-(f.5), Lemmas 1-5, inequalities (8),
(11), (14), (15) and the cost bound (10) — and reports Table 2's case
census.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import FirstFit
from ..analysis.bounds import theorem4_bound
from ..analysis.ff_decomposition import decompose_first_fit, verify_decomposition
from ..analysis.sweep import SweepResult
from ..core.metrics import trace_stats
from ..core.simulator import simulate
from ..opt.lower_bounds import opt_total_lower_bound
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "thm4-small-items",
    display="Theorem 4 / Figures 4-7 / Table 2",
    description="Small items (s < W/k): FF ratio ≤ (k/(k−1))μ + 6k/(k−1) + 1, "
    "with the whole proof decomposition verified",
)
def run(
    ks: Sequence[float] = (2, 4, 8),
    arrival_rates: Sequence[float] = (2.0, 8.0),
    horizon: float = 120.0,
    mu_cap: float = 10.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    table = SweepResult(
        headers=[
            "k",
            "rate",
            "seed",
            "items",
            "mu",
            "ratio",
            "bound",
            "subperiods",
            "decomposition_ok",
        ]
    )
    ratios_ok = True
    decomposition_ok = True
    case_counts: dict[str, int] = {}
    for k in ks:
        for rate in arrival_rates:
            for seed in seeds:
                trace = generate_trace(
                    arrival_rate=rate,
                    horizon=horizon,
                    duration=Clipped(Exponential(3.0), 1.0, mu_cap),
                    size=Uniform(0.01, 0.999 / k),
                    seed=seed,
                    name=f"small-k{k}",
                )
                if len(trace) == 0:
                    continue
                result = simulate(trace.items, FirstFit(), capacity=1.0)
                stats = trace_stats(trace.items)
                opt_lb = opt_total_lower_bound(trace.items, capacity=1.0)
                ratio = float(result.total_cost() / opt_lb)
                bound = theorem4_bound(stats.mu, k)
                ratios_ok = ratios_ok and ratio <= bound * (1 + 1e-9)

                dec = decompose_first_fit(result)
                report = verify_decomposition(dec, small_k=k)
                decomposition_ok = decomposition_ok and report.all_ok
                for case, count in report.case_counts.items():
                    case_counts[case] = case_counts.get(case, 0) + count
                table.add(
                    {
                        "k": k,
                        "rate": rate,
                        "seed": seed,
                        "items": len(trace),
                        "mu": float(stats.mu),
                        "ratio": ratio,
                        "bound": float(bound),
                        "subperiods": report.num_subperiods,
                        "decomposition_ok": report.all_ok,
                    }
                )
    return ExperimentResult(
        name="thm4-small-items",
        title="Theorem 4: First Fit on small items (all sizes < W/k)",
        table=table,
        checks=[
            ClaimCheck(
                claim="FF ratio ≤ (k/(k−1))μ + 6k/(k−1) + 1 on every small-item trace",
                holds=ratios_ok,
            ),
            ClaimCheck(
                claim="every proof artifact (eq. 5/7, f.1-f.5, Lemmas 1-5, "
                "ineq. 8/11/14/15, bound 10) verified on every packing",
                holds=decomposition_ok,
            ),
        ],
        notes=[f"Table 2 case census across all runs: {case_counts}"],
    )
