"""Experiment E7 — Theorem 5 + Figure 8: general First Fit.

On unrestricted traces First Fit's ratio is at most ``2μ + 13``.  The
experiment sweeps workload mixes (including adversarial burst shapes and
the trap traces of Theorem 2) and verifies the bound plus Lemma 5's
auxiliary-period disjointness through the decomposition machinery.
"""

from __future__ import annotations

from typing import Sequence

from ..adversaries.bestfit_unbounded import run_theorem2_adversary
from ..algorithms import FirstFit
from ..analysis.bounds import theorem5_bound
from ..analysis.ff_decomposition import decompose_first_fit, verify_decomposition
from ..analysis.sweep import SweepResult
from ..core.metrics import trace_stats
from ..core.simulator import simulate
from ..opt.lower_bounds import opt_total_lower_bound
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_burst_trace, generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _workloads(mu_cap: float, seeds: Sequence[int]):
    for seed in seeds:
        yield (
            f"poisson-{seed}",
            generate_trace(
                arrival_rate=4.0,
                horizon=100.0,
                duration=Clipped(Exponential(3.0), 1.0, mu_cap),
                size=Uniform(0.05, 1.0),
                seed=seed,
            ).items,
        )
        yield (
            f"bursts-{seed}",
            generate_burst_trace(
                num_bursts=12,
                burst_size=25,
                burst_spacing=5.0,
                duration=Clipped(Exponential(4.0), 1.0, mu_cap),
                size=Uniform(0.05, 0.8),
                seed=seed,
            ).items,
        )
    # First Fit on a Best Fit trap trace: an adversarial shape FF survives.
    trap = run_theorem2_adversary(k=4, mu=3, n_iterations=3, compute_opt=False)
    yield ("bf-trap-k4", trap.result.items)


@register_experiment(
    "thm5-general-ff",
    display="Theorem 5 / Figure 8",
    description="General First Fit: ratio ≤ 2μ + 13; Lemma 5 verified",
)
def run(
    mu_cap: float = 8.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    table = SweepResult(
        headers=["workload", "items", "mu", "ff_cost", "opt_lb", "ratio", "bound_2mu+13", "decomposition_ok"]
    )
    ratios_ok = True
    decomposition_ok = True
    for name, items in _workloads(mu_cap, seeds):
        result = simulate(items, FirstFit(), capacity=1.0)
        stats = trace_stats(items)
        opt_lb = opt_total_lower_bound(items, capacity=1.0)
        ratio = float(result.total_cost() / opt_lb)
        bound = theorem5_bound(stats.mu)
        ratios_ok = ratios_ok and ratio <= bound * (1 + 1e-9)
        dec = decompose_first_fit(result)
        report = verify_decomposition(dec)
        decomposition_ok = decomposition_ok and report.all_ok
        table.add(
            {
                "workload": name,
                "items": len(items),
                "mu": float(stats.mu),
                "ff_cost": float(result.total_cost()),
                "opt_lb": float(opt_lb),
                "ratio": ratio,
                "bound_2mu+13": float(bound),
                "decomposition_ok": report.all_ok,
            }
        )
    return ExperimentResult(
        name="thm5-general-ff",
        title="Theorem 5: First Fit in the general case",
        table=table,
        checks=[
            ClaimCheck(claim="FF ratio ≤ 2μ + 13 on every workload", holds=ratios_ok),
            ClaimCheck(
                claim="Lemma 5 (auxiliary periods disjoint) and inequality (14)/(15) "
                "hold on every packing",
                holds=decomposition_ok,
            ),
        ],
    )
