"""Executable experiments: one per paper table/figure/theorem (see DESIGN.md)."""

from .registry import (
    ClaimCheck,
    ExperimentResult,
    available_experiments,
    experiment_info,
    get_experiment,
    register_experiment,
    run_experiments,
)

__all__ = [
    "ClaimCheck",
    "ExperimentResult",
    "register_experiment",
    "get_experiment",
    "available_experiments",
    "experiment_info",
    "run_experiments",
]
