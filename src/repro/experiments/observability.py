"""Observability experiment: trace replay exactness and snapshot determinism.

Not a paper display — a self-check of the :mod:`repro.obs` layer against
the engine it observes.  Each algorithm serves the same seeded session
stream with full observability attached (metrics registry, lifecycle
tracer, probe-counting instrumentation), and three claims are checked:

* **replay exactness** — replaying the lifecycle trace alone (no engine)
  reconstructs the run's :class:`~repro.core.streaming.StreamSummary`
  exactly, float for float (:func:`repro.obs.verify_trace`).
* **byte-stable determinism** — re-running the identically-seeded stream
  yields a byte-identical metrics snapshot *and* a byte-identical trace
  file.
* **metric/summary agreement** — the registry's counters and gauge peaks
  agree with the engine's own aggregates (sessions started =
  ``num_items``, bins opened = ``num_bins_used``, open-bin peak =
  ``peak_open_bins``).
"""

from __future__ import annotations

import io

from ..algorithms import BestFit, FirstFit, ModifiedFirstFit
from ..analysis.sweep import SweepResult
from ..obs import ObservationSession, observe_stream, verify_trace
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import stream_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _sessions(n_items: int, seed: int):
    return dict(
        arrival_rate=6.0,
        duration=Clipped(Exponential(30.0), 5.0, 120.0),
        size=Uniform(0.2, 0.7),
        n_items=n_items,
        seed=seed,
    )


def _observed_run(
    algo_factory, n_items: int, seed: int
) -> tuple[ObservationSession, str]:
    sink = io.StringIO()
    summary, session = observe_stream(
        stream_trace(**_sessions(n_items, seed)),
        algo_factory(),
        trace=sink,
        seed=seed,
        workload={"generator": "stream_trace", "n_items": n_items},
    )
    assert session.summary is summary
    return session, sink.getvalue()


@register_experiment(
    "observability",
    display="Observability self-check",
    description="Lifecycle-trace replay exactness, byte-stable metrics "
    "snapshots, and metric/summary agreement",
)
def run(n_items: int = 2000, seed: int = 0) -> ExperimentResult:
    table = SweepResult(
        headers=[
            "algorithm",
            "sessions",
            "bins",
            "peak",
            "cost(cont)",
            "trace records",
            "mean probes",
            "mean util@close",
        ]
    )
    replay_exact = True
    byte_stable = True
    consistent = True
    for algo_factory in (FirstFit, BestFit, ModifiedFirstFit):
        session, trace_text = _observed_run(algo_factory, n_items, seed)
        summary = session.summary
        assert summary is not None
        replayed = verify_trace(trace_text.splitlines())
        replay_exact = replay_exact and replayed == summary

        rerun_session, rerun_text = _observed_run(algo_factory, n_items, seed)
        byte_stable = byte_stable and (
            rerun_text == trace_text
            and rerun_session.registry.to_json() == session.registry.to_json()
        )

        reg = session.registry
        consistent = consistent and (
            reg["dbp_sessions_started_total"].value == summary.num_items
            and reg["dbp_bins_opened_total"].value == summary.num_bins_used
            and reg["dbp_open_bins"].peak == summary.peak_open_bins
        )
        probes = reg["dbp_fit_probes"]
        util = reg["dbp_bin_utilization_at_close"]
        table.add(
            {
                "algorithm": summary.algorithm_name,
                "sessions": summary.num_items,
                "bins": summary.num_bins_used,
                "peak": summary.peak_open_bins,
                "cost(cont)": float(summary.total_cost),
                "trace records": trace_text.count("\n"),
                "mean probes": probes.sum / probes.count if probes.count else 0.0,
                "mean util@close": util.sum / util.count if util.count else 0.0,
            }
        )
    checks = [
        ClaimCheck(
            claim="replaying the lifecycle trace alone reconstructs the "
            "StreamSummary exactly (floats included)",
            holds=replay_exact,
        ),
        ClaimCheck(
            claim="identically-seeded runs produce byte-identical metrics "
            "snapshots and trace files",
            holds=byte_stable,
        ),
        ClaimCheck(
            claim="registry counters/peaks agree with the engine's own "
            "aggregates",
            holds=consistent,
        ),
    ]
    return ExperimentResult(
        name="observability",
        title="Observability self-check: replay exactness and determinism",
        table=table,
        checks=checks,
        notes=[
            "mean probes = candidate bins examined per placement (indexed "
            "fit queries count one probe each); util@close = time-averaged "
            "fill level of each bin over its life"
        ],
    )
