"""Experiment E15 (extension) — the price of never migrating.

The paper forbids migration ("migration of game instances ... is not
preferable due to large migration overheads").  Fully dynamic bin packing
(Ivkovic & Lloyd) allows it.  This experiment measures the cost of that
restriction: blind online First Fit vs the repack-at-every-event FFD
schedule (an *upper* bound on what any migrating policy must pay, and on
OPT_total itself) across load levels.

Expected shape (checked): the migration gap stays modest (well under the
theorems' worst cases) and *grows* with load — at light load most bins
hold one item and there is nothing for migration to fix, while contention
leaves fragmentation that only repacking reclaims.

The default path measures FF against *itself with bounded migration*
(:class:`repro.renting.BoundedRepacker` at migration factor β = 1
through the engine's ``migrate`` operation) — a policy the engine can
actually execute, move by settled move.  The pre-repacker comparison
(blind FF vs the repack-at-every-event FFD schedule, an ad-hoc rebuild
rather than a migrating run) remains reproducible behind ``legacy=True``
and is pinned byte-for-byte by ``tests/test_migration_gap_pins.py``.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import FirstFit
from ..analysis.sweep import SweepResult
from ..core.simulator import simulate
from ..core.streaming import simulate_stream
from ..opt.lower_bounds import opt_bracket
from ..renting import BoundedRepacker
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _trace(rate: float, seed: int, horizon: float):
    return generate_trace(
        arrival_rate=rate,
        horizon=horizon,
        duration=Clipped(Exponential(3.0), 1.0, 9.0),
        size=Uniform(0.1, 0.7),
        seed=seed,
    )


@register_experiment(
    "migration-gap",
    display="Related work (fully dynamic DBP)",
    description="Online no-migration FF vs FF with bounded migration (β = 1) "
    "across load levels; legacy=True reproduces the FFD-rebuild rows",
)
def run(
    rates: Sequence[float] = (0.5, 2.0, 8.0),
    seeds: Sequence[int] = (0, 1, 2),
    horizon: float = 120.0,
    legacy: bool = False,
) -> ExperimentResult:
    if legacy:
        return _run_legacy(rates=rates, seeds=seeds, horizon=horizon)
    table = SweepResult(
        headers=[
            "rate",
            "seed",
            "items",
            "ff_cost",
            "bounded_repack",
            "migrations",
            "opt_lb",
            "migration_gap",
        ]
    )
    gaps_by_rate: dict[float, list[float]] = {r: [] for r in rates}
    sane = True
    for rate in rates:
        for seed in seeds:
            trace = _trace(rate, seed, horizon)
            ff = float(simulate(trace.items, FirstFit()).total_cost())
            repacker = BoundedRepacker(factor=1)
            repacked = float(
                simulate_stream(
                    iter(trace.items), FirstFit(), repacker=repacker
                ).total_cost
            )
            bracket = opt_bracket(trace.items)
            gap = ff / repacked
            gaps_by_rate[rate].append(gap)
            sane = sane and float(bracket.pointwise_lb) <= repacked * (1 + 1e-9)
            table.add(
                {
                    "rate": rate,
                    "seed": seed,
                    "items": len(trace),
                    "ff_cost": ff,
                    "bounded_repack": repacked,
                    "migrations": repacker.migrations_done,
                    "opt_lb": float(bracket.pointwise_lb),
                    "migration_gap": gap,
                }
            )
    means = {r: sum(g) / len(g) for r, g in gaps_by_rate.items()}
    return ExperimentResult(
        name="migration-gap",
        title="The price of never migrating (FF vs FF + bounded migration, β = 1)",
        table=table,
        checks=[
            ClaimCheck(
                claim="migration gap stays below 1.6 on all workloads "
                "(≪ the 2μ+13 worst case)",
                holds=all(g < 1.6 for gs in gaps_by_rate.values() for g in gs),
            ),
            ClaimCheck(
                claim="mean gap grows from the lightest to the heaviest load "
                "(fragmentation accumulates under contention)",
                holds=means[rates[0]] <= means[rates[-1]],
                detail=", ".join(f"rate {r}: {m:.3f}" for r, m in means.items()),
            ),
            ClaimCheck(
                claim="the migrating run never beats the OPT lower bound",
                holds=sane,
            ),
        ],
        notes=[
            "bounded_repack is a real migrating execution (every move settled "
            "by the engine), not a schedule rebuild; legacy=True restores the "
            "old FFD-rebuild comparison."
        ],
    )


def _run_legacy(
    *, rates: Sequence[float], seeds: Sequence[int], horizon: float
) -> ExperimentResult:
    """The pre-repacker rows, byte-for-byte (pinned by the regression test)."""
    table = SweepResult(
        headers=["rate", "seed", "items", "ff_cost", "ffd_repack", "opt_lb", "migration_gap"]
    )
    gaps_by_rate: dict[float, list[float]] = {r: [] for r in rates}
    sane = True
    for rate in rates:
        for seed in seeds:
            trace = _trace(rate, seed, horizon)
            ff = float(simulate(trace.items, FirstFit()).total_cost())
            bracket = opt_bracket(trace.items)
            repack = float(bracket.ffd_ub)
            gap = ff / repack
            gaps_by_rate[rate].append(gap)
            sane = sane and float(bracket.pointwise_lb) <= ff * (1 + 1e-9)
            table.add(
                {
                    "rate": rate,
                    "seed": seed,
                    "items": len(trace),
                    "ff_cost": ff,
                    "ffd_repack": repack,
                    "opt_lb": float(bracket.pointwise_lb),
                    "migration_gap": gap,
                }
            )
    means = {r: sum(g) / len(g) for r, g in gaps_by_rate.items()}
    return ExperimentResult(
        name="migration-gap",
        title="The price of never migrating (FF vs repack-every-event FFD)",
        table=table,
        checks=[
            ClaimCheck(
                claim="migration gap stays below 1.6 on all workloads "
                "(≪ the 2μ+13 worst case)",
                holds=all(g < 1.6 for gs in gaps_by_rate.values() for g in gs),
            ),
            ClaimCheck(
                claim="mean gap grows from the lightest to the heaviest load "
                "(fragmentation accumulates under contention)",
                holds=means[rates[0]] <= means[rates[-1]],
                detail=", ".join(f"rate {r}: {m:.3f}" for r, m in means.items()),
            ),
            ClaimCheck(claim="FF never beats the OPT lower bound", holds=sane),
        ],
    )
