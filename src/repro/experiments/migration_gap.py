"""Experiment E15 (extension) — the price of never migrating.

The paper forbids migration ("migration of game instances ... is not
preferable due to large migration overheads").  Fully dynamic bin packing
(Ivkovic & Lloyd) allows it.  This experiment measures the cost of that
restriction: blind online First Fit vs the repack-at-every-event FFD
schedule (an *upper* bound on what any migrating policy must pay, and on
OPT_total itself) across load levels.

Expected shape (checked): the migration gap FF/FFD-repack stays modest
(well under the theorems' worst cases) and *grows* with load — at light
load most bins hold one item and there is nothing for migration to fix,
while contention leaves fragmentation that only repacking reclaims.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import FirstFit
from ..analysis.sweep import SweepResult
from ..core.simulator import simulate
from ..opt.lower_bounds import opt_bracket
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "migration-gap",
    display="Related work (fully dynamic DBP)",
    description="Online no-migration FF vs repack-every-event FFD across load levels",
)
def run(
    rates: Sequence[float] = (0.5, 2.0, 8.0),
    seeds: Sequence[int] = (0, 1, 2),
    horizon: float = 120.0,
) -> ExperimentResult:
    table = SweepResult(
        headers=["rate", "seed", "items", "ff_cost", "ffd_repack", "opt_lb", "migration_gap"]
    )
    gaps_by_rate: dict[float, list[float]] = {r: [] for r in rates}
    sane = True
    for rate in rates:
        for seed in seeds:
            trace = generate_trace(
                arrival_rate=rate,
                horizon=horizon,
                duration=Clipped(Exponential(3.0), 1.0, 9.0),
                size=Uniform(0.1, 0.7),
                seed=seed,
            )
            ff = float(simulate(trace.items, FirstFit()).total_cost())
            bracket = opt_bracket(trace.items)
            repack = float(bracket.ffd_ub)
            gap = ff / repack
            gaps_by_rate[rate].append(gap)
            sane = sane and float(bracket.pointwise_lb) <= ff * (1 + 1e-9)
            table.add(
                {
                    "rate": rate,
                    "seed": seed,
                    "items": len(trace),
                    "ff_cost": ff,
                    "ffd_repack": repack,
                    "opt_lb": float(bracket.pointwise_lb),
                    "migration_gap": gap,
                }
            )
    means = {r: sum(g) / len(g) for r, g in gaps_by_rate.items()}
    return ExperimentResult(
        name="migration-gap",
        title="The price of never migrating (FF vs repack-every-event FFD)",
        table=table,
        checks=[
            ClaimCheck(
                claim="migration gap stays below 1.6 on all workloads "
                "(≪ the 2μ+13 worst case)",
                holds=all(g < 1.6 for gs in gaps_by_rate.values() for g in gs),
            ),
            ClaimCheck(
                claim="mean gap grows from the lightest to the heaviest load "
                "(fragmentation accumulates under contention)",
                holds=means[rates[0]] <= means[rates[-1]],
                detail=", ".join(f"rate {r}: {m:.3f}" for r, m in means.items()),
            ),
            ClaimCheck(claim="FF never beats the OPT lower bound", holds=sane),
        ],
    )
