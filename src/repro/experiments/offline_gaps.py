"""Experiment E16 (extension) — the exact benchmark ladder on small instances.

Pins, with *exact* solvers, the full hierarchy the reproduction measures
against elsewhere with bounds::

    pointwise LB ≤ OPT_total (repacking) ≤ OPT (no migration) ≤ FF online

Each rung is computed exactly (per-snapshot branch & bound for repacking,
assignment branch & bound for no-migration), so the table shows where the
cost of each restriction — losing migration, then losing clairvoyance —
actually lands on concrete instances.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import FirstFit
from ..analysis.sweep import SweepResult
from ..clairvoyant.algorithms import MinExpandFit, simulate_clairvoyant
from ..core.simulator import simulate
from ..opt.lower_bounds import pointwise_lower_bound
from ..opt.offline import no_migration_opt_total
from ..opt.snapshot import opt_total_exact
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


@register_experiment(
    "offline-gaps",
    display="Benchmark ladder (exact, small instances)",
    description="pointwise LB ≤ repacking OPT ≤ no-migration OPT ≤ online, all exact",
)
def run(
    seeds: Sequence[int] = (0, 1, 2, 3, 4, 5),
    num_items_target: int = 10,
    node_limit: int = 3_000_000,
) -> ExperimentResult:
    table = SweepResult(
        headers=[
            "seed",
            "items",
            "pointwise_lb",
            "opt_repack",
            "opt_nomig",
            "minexpand",
            "ff",
            "migration_gain",
            "clairvoyance_gain",
        ]
    )
    ladder_ok = True
    nomig_separates = False

    def instance_stream():
        from ..scenarios import pinned_bin_example, theorem1_static_instance

        # Canonical adversarial shapes first: these are where the online
        # gap provably lives (random small instances rarely exhibit it).
        yield "pinned", pinned_bin_example()
        yield "thm1-k3", theorem1_static_instance(3, 6)
        for seed in seeds:
            yield seed, None

    for seed, preset in instance_stream():
        if preset is not None:
            items = tuple(preset)
        else:
            trace = generate_trace(
                arrival_rate=num_items_target / 20.0,
                horizon=20.0,
                duration=Clipped(Exponential(4.0), 1.0, 10.0),
                size=Uniform(0.25, 0.75),
                seed=seed,
            )
            # The no-migration search is exponential: keep instances
            # exact-sized by truncating to the first arrivals.
            items = tuple(
                sorted(trace.items, key=lambda it: (it.arrival, it.item_id))
            )[:num_items_target]
        if not items:
            continue
        lb = float(pointwise_lower_bound(items))
        repack = float(opt_total_exact(items))
        nomig = float(no_migration_opt_total(items, node_limit=node_limit))
        aware = float(simulate_clairvoyant(items, MinExpandFit()).total_cost())
        ff = float(simulate(items, FirstFit()).total_cost())
        tol = 1e-9 * max(1.0, ff)
        ladder_ok = ladder_ok and (lb <= repack + tol <= nomig + 2 * tol <= aware + 3 * tol)
        ladder_ok = ladder_ok and nomig <= ff + tol
        nomig_separates = nomig_separates or nomig < ff - tol
        table.add(
            {
                "seed": seed,
                "items": len(items),
                "pointwise_lb": lb,
                "opt_repack": repack,
                "opt_nomig": nomig,
                "minexpand": aware,
                "ff": ff,
                "migration_gain": nomig / repack if repack else 1.0,
                "clairvoyance_gain": ff / nomig if nomig else 1.0,
            }
        )
    return ExperimentResult(
        name="offline-gaps",
        title="Exact benchmark ladder on small instances",
        table=table,
        checks=[
            ClaimCheck(
                claim="LB ≤ repacking OPT ≤ no-migration OPT ≤ MinExpand, and "
                "no-migration OPT ≤ FF, on every instance",
                holds=ladder_ok,
            ),
            ClaimCheck(
                claim="online FF is strictly above the no-migration OPT on some "
                "instance (the online gap is real)",
                holds=nomig_separates,
            ),
        ],
        notes=[
            "MinExpand (clairvoyant online) sits between the no-migration OPT "
            "and blind FF: it knows departures but must still decide at arrival."
        ],
    )
