"""Engine-scaling experiment: the indexed streamed engine vs the seed scan.

Not a paper display — an infrastructure experiment guarding the scale-out
refactor.  For each trace size, the same seeded workload is packed twice:
once by the O(n log n) engine (indexed selection protocol, lazy heap-merge
event stream, O(active)-memory recording off) and once by the seed-style
O(n²) engine (materialized trace, list-scan selection, full recording).
The claim checked is **exact equivalence**: both engines must open the same
number of bins and accrue the same total cost — the streamed index is a
pure speedup, never a different packing.  Throughput columns make the
asymptotic gap visible; :mod:`benchmarks.bench_engine_scaling` measures it
at full scale.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

from ..algorithms import BestFit, FirstFit, PackingAlgorithm
from ..analysis.sweep import SweepResult
from ..core.simulator import simulate
from ..core.streaming import simulate_stream
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import stream_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _fleet() -> list[PackingAlgorithm]:
    return [FirstFit(), BestFit()]


def _workload(n_items: int, seed: int):
    """A scan-heavy workload: long sessions, large items, many open bins."""
    return dict(
        arrival_rate=100.0,
        duration=Clipped(Exponential(100.0), 20.0, 200.0),
        size=Uniform(0.3, 0.9),
        n_items=n_items,
        seed=seed,
    )


@register_experiment(
    "engine-scaling",
    display="Engine scale-out",
    description="Streamed indexed engine vs seed list scan: identical packings, "
    "items/sec at growing trace sizes",
    deterministic=False,  # throughput columns read the wall clock
)
def run(
    sizes: Sequence[int] = (2000, 8000),
    seeds: Sequence[int] = (0,),
) -> ExperimentResult:
    table = SweepResult(
        headers=[
            "algorithm",
            "items",
            "seed",
            "bins(stream)",
            "bins(scan)",
            "stream items/s",
            "scan items/s",
            "speedup",
        ]
    )
    equivalent = True
    for algo in _fleet():
        for n_items in sizes:
            for seed in seeds:
                t0 = time.perf_counter()
                summary = simulate_stream(
                    stream_trace(**_workload(n_items, seed)), algo
                )
                stream_s = time.perf_counter() - t0

                items = list(stream_trace(**_workload(n_items, seed)))
                t0 = time.perf_counter()
                result = simulate(items, algo, indexed=False)
                scan_s = time.perf_counter() - t0

                # Cost is compared with a tolerance: the streaming engine
                # sums usage in close order, the result in opening order,
                # and float addition is order-sensitive at the last ulp.
                same = (
                    summary.num_bins_used == result.num_bins_used
                    and summary.peak_open_bins == result.max_bins_used
                    and math.isclose(
                        summary.total_cost, result.total_cost(), rel_tol=1e-9
                    )
                )
                equivalent = equivalent and same
                table.add(
                    {
                        "algorithm": algo.name,
                        "items": summary.num_items,
                        "seed": seed,
                        "bins(stream)": summary.num_bins_used,
                        "bins(scan)": result.num_bins_used,
                        "stream items/s": round(summary.num_items / stream_s),
                        "scan items/s": round(summary.num_items / scan_s),
                        "speedup": round(scan_s / stream_s, 2),
                    }
                )
    checks = [
        ClaimCheck(
            claim="streamed indexed engine reproduces the seed list-scan "
            "packing exactly (bins, peak, total cost)",
            holds=equivalent,
        )
    ]
    return ExperimentResult(
        name="engine-scaling",
        title="Engine scale-out: streamed indexed vs seed list scan",
        table=table,
        checks=checks,
        notes=[
            "throughput ratios grow with open-bin count; see "
            "benchmarks/bench_engine_scaling.py for the 10k/100k/1M baseline"
        ],
    )
