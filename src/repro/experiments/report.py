"""Markdown report generation: EXPERIMENTS.md-style output from live runs.

``python -m repro report --out report.md`` reruns (a subset of) the
experiment catalogue and renders a self-contained markdown document with
every table and claim check — the mechanism behind keeping the committed
EXPERIMENTS.md honest.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.tables import format_value
from .registry import (
    ExperimentResult,
    available_experiments,
    experiment_info,
    get_experiment,
)

__all__ = ["render_markdown", "generate_report"]


def _markdown_table(result: ExperimentResult, *, precision: int) -> str:
    headers = result.table.headers
    lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in result.table.rows:
        cells = [format_value(v, precision=precision) for v in row]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_markdown(results: Sequence[ExperimentResult], *, precision: int = 4) -> str:
    """Render finished experiment results as one markdown document."""
    total_claims = sum(len(r.checks) for r in results)
    passed = sum(1 for r in results for c in r.checks if c.holds)
    parts = [
        "# Experiment report",
        "",
        f"{len(results)} experiments, {passed}/{total_claims} claims hold.",
        "",
    ]
    for result in results:
        info = experiment_info(result.name)
        parts.append(f"## {result.name} — {info['display']}")
        parts.append("")
        parts.append(info["description"] + ".")
        parts.append("")
        parts.append(_markdown_table(result, precision=precision))
        parts.append("")
        for check in result.checks:
            mark = "✅" if check.holds else "❌"
            detail = f" — {check.detail}" if check.detail else ""
            parts.append(f"- {mark} {check.claim}{detail}")
        for note in result.notes:
            parts.append(f"- *note: {note}*")
        parts.append("")
    return "\n".join(parts)


def generate_report(
    names: Sequence[str] | None = None, *, precision: int = 4
) -> tuple[str, bool]:
    """Run experiments (all by default) and render the report.

    Returns ``(markdown, all_claims_hold)``.
    """
    names = list(names) if names is not None else available_experiments()
    results = [get_experiment(name)() for name in names]
    ok = all(r.all_claims_hold for r in results)
    return render_markdown(results, precision=precision), ok
