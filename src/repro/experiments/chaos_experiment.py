"""Chaos experiment: the resilience layer's invariants as claim checks.

Not a paper display — the robustness harness for everything the other
experiments rely on.  A seeded :class:`repro.resilience.ChaosCampaignConfig`
grid injects crashes at checkpoint boundaries and corrupts stored
generations (bit-flip, truncation, emptying) over scalar and vector
session streams, then the campaign's invariants become claims:

* **exact resume** — every crashed-and-resumed dispatch reproduces the
  uninterrupted run's summary, billed cost, and server counts bit for bit
  (no double billing, no lost placements);
* **total corruption detection** — every injected corruption is caught by
  the store's checksum/schema verification and skipped, never silently
  restored;
* **monotone time** — simulation time never runs backwards across a
  crash/resume boundary;
* **byte-stable reports** — re-running the campaign yields a
  byte-identical :meth:`~repro.resilience.ChaosCampaignReport.to_json`.

This experiment keeps every scenario in-process (no worker-kill, no
pool), so it is safe to run inside daemonized pool workers — the
differential suite shards the whole catalogue that way.  The full
campaign, worker kills included, runs via ``python -m repro chaos``.
"""

from __future__ import annotations

from ..analysis.sweep import SweepResult
from ..resilience import ChaosCampaignConfig, run_campaign
from .registry import ClaimCheck, ExperimentResult, register_experiment


def default_config(*, seed: int = 0, n_items: int = 160) -> ChaosCampaignConfig:
    """The experiment's campaign grid (in-process scenarios only)."""
    return ChaosCampaignConfig(
        seed=seed,
        n_items=n_items,
        checkpoint_every=24,
        crash_points=(1, 3),
        corruption_modes=("bitflip", "truncate", "empty"),
        traces=("scalar", "vector"),
        include_worker_kill=False,
    )


@register_experiment(
    "chaos",
    display="Chaos campaign",
    description="Seeded fault-injection campaign: crash/resume exactness, "
    "corruption detection, monotone time, byte-stable reports",
)
def run(*, seed: int = 0, n_items: int = 160) -> ExperimentResult:
    config = default_config(seed=seed, n_items=n_items)
    report = run_campaign(config)
    repeat = run_campaign(config)

    table = SweepResult(
        headers=[
            "scenario",
            "kind",
            "trace",
            "param",
            "crashes",
            "checkpoints",
            "corruptions",
            "detected",
            "exact",
            "ok",
        ]
    )
    for row in report.rows:
        table.add(
            {
                "scenario": row["scenario"],
                "kind": row["kind"],
                "trace": row["trace"],
                "param": row["param"],
                "crashes": row["crashes"],
                "checkpoints": row["checkpoints"],
                "corruptions": row["corruptions_injected"],
                "detected": row["corruptions_detected"],
                "exact": row["exact_resume"],
                "ok": row["ok"],
            }
        )

    totals = report.totals
    checks = [
        ClaimCheck(
            claim="every crashed run resumes to float-identical results",
            holds=totals["exact_resumes"] == totals["scenarios"],
            detail=f"{totals['exact_resumes']}/{totals['scenarios']} scenarios exact",
        ),
        ClaimCheck(
            claim="every injected corruption is detected and skipped",
            holds=totals["corruptions_detected"] == totals["corruptions_injected"],
            detail=(
                f"{totals['corruptions_detected']}/"
                f"{totals['corruptions_injected']} corruptions caught"
            ),
        ),
        ClaimCheck(
            claim="event time stays monotone across crash/resume boundaries",
            holds=all(row["monotone_time"] for row in report.rows),
        ),
        ClaimCheck(
            claim="campaign report is byte-stable across repeat runs",
            holds=report.to_json() == repeat.to_json(),
        ),
        ClaimCheck(
            claim="all scenarios pass",
            holds=report.all_pass,
            detail=f"{totals['scenarios'] - totals['failed']}/{totals['scenarios']} ok",
        ),
    ]
    notes = [
        f"{totals['crashes_injected']} crashes injected, "
        f"{totals['checkpoints_written']} checkpoint generations written",
        "worker-kill scenarios run via `python -m repro chaos` "
        "(they spawn processes, so the in-catalogue run skips them)",
    ]
    return ExperimentResult(
        name="chaos",
        title=f"Chaos campaign (seed={seed}, {n_items} sessions/scenario)",
        table=table,
        checks=checks,
        notes=notes,
    )
