"""Experiment E8 — Section 4.4: Modified First Fit.

Compares FF, MFF(k=8) (μ unknown) and MFF(k=μ+7) (μ known) on size-bimodal
workloads — the mix MFF was designed for — and checks each algorithm
against its proved bound:

* FF ≤ 2μ + 13 (Theorem 5);
* MFF(k=8) ≤ (8/7)μ + 55/7;
* MFF(k=μ+7) ≤ μ + 8.

Also sweeps MFF's k to expose the paper's trade-off ``max{k, (μ+6)/(1−1/k)}``
(the ablation DESIGN.md calls out): too small a k misclassifies mid-size
items, too large a k starves the large-item pool.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import FirstFit, ModifiedFirstFit
from ..analysis.bounds import (
    mff_bound_known_mu,
    mff_bound_unknown_mu,
    mff_generic_bound,
    theorem5_bound,
)
from ..analysis.sweep import SweepResult
from ..core.metrics import trace_stats
from ..core.simulator import simulate
from ..opt.lower_bounds import opt_total_lower_bound
from ..workloads.distributions import Choice, Clipped, Exponential
from ..workloads.generators import generate_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _bimodal_trace(seed: int, mu_cap: float, rate: float):
    """Sizes split around W/8: many small, some large (the MFF regime)."""
    return generate_trace(
        arrival_rate=rate,
        horizon=150.0,
        duration=Clipped(Exponential(3.0), 1.0, mu_cap),
        size=Choice.of([0.04, 0.06, 0.10, 0.30, 0.45, 0.60], [4, 4, 4, 1, 1, 1]),
        seed=seed,
        name=f"bimodal-{seed}",
    )


@register_experiment(
    "mff",
    display="Section 4.4 (Modified First Fit)",
    description="MFF vs FF with the (8/7)μ+55/7 and μ+8 bounds, plus a k-ablation",
)
def run(
    seeds: Sequence[int] = (0, 1, 2, 3),
    mu_cap: float = 8.0,
    rate: float = 6.0,
    k_ablation: Sequence[float] = (2, 4, 8, 15, 30),
) -> ExperimentResult:
    table = SweepResult(
        headers=["seed", "mu", "algorithm", "cost", "ratio", "bound"]
    )
    checks_ok = {"ff": True, "mff8": True, "mff_mu": True}
    mff_not_worse_always = True
    for seed in seeds:
        trace = _bimodal_trace(seed, mu_cap, rate)
        stats = trace_stats(trace.items)
        mu = float(stats.mu)
        opt_lb = opt_total_lower_bound(trace.items, capacity=1.0)
        runs = [
            ("first-fit", FirstFit(), theorem5_bound(mu), "ff"),
            ("mff(k=8)", ModifiedFirstFit(), mff_bound_unknown_mu(mu), "mff8"),
            ("mff(k=mu+7)", ModifiedFirstFit.with_known_mu(mu), mff_bound_known_mu(mu), "mff_mu"),
        ]
        costs = {}
        for label, algo, bound, key in runs:
            result = simulate(trace.items, algo, capacity=1.0)
            ratio = float(result.total_cost() / opt_lb)
            costs[label] = float(result.total_cost())
            checks_ok[key] = checks_ok[key] and ratio <= float(bound) * (1 + 1e-9)
            table.add(
                {
                    "seed": seed,
                    "mu": mu,
                    "algorithm": label,
                    "cost": float(result.total_cost()),
                    "ratio": ratio,
                    "bound": float(bound),
                }
            )
        # MFF's guarantee is about the worst case, not every instance; track
        # whether the *bound ordering* (μ+8 < (8/7)μ+55/7 < 2μ+13 for μ > 1)
        # is reflected here, without asserting per-instance dominance.
        mff_not_worse_always = mff_not_worse_always and (
            costs["mff(k=mu+7)"] <= 2.0 * costs["first-fit"]
        )

    # k ablation on one trace.
    ablation = SweepResult(headers=["seed", "mu", "algorithm", "cost", "ratio", "bound"])
    trace = _bimodal_trace(seeds[0], mu_cap, rate)
    mu = float(trace_stats(trace.items).mu)
    opt_lb = opt_total_lower_bound(trace.items, capacity=1.0)
    for k in k_ablation:
        result = simulate(trace.items, ModifiedFirstFit(k=k), capacity=1.0)
        table.add(
            {
                "seed": seeds[0],
                "mu": mu,
                "algorithm": f"mff(k={k})",
                "cost": float(result.total_cost()),
                "ratio": float(result.total_cost() / opt_lb),
                "bound": float(mff_generic_bound(mu, k)),
            }
        )

    checks = [
        ClaimCheck(claim="FF ratio ≤ 2μ + 13 on every bimodal trace", holds=checks_ok["ff"]),
        ClaimCheck(
            claim="MFF(k=8) ratio ≤ (8/7)μ + 55/7 on every bimodal trace",
            holds=checks_ok["mff8"],
        ),
        ClaimCheck(
            claim="MFF(k=μ+7) ratio ≤ μ + 8 on every bimodal trace",
            holds=checks_ok["mff_mu"],
        ),
        ClaimCheck(
            claim="MFF stays within 2× of FF cost (guarantees are worst-case, "
            "average behaviour comparable)",
            holds=mff_not_worse_always,
        ),
    ]
    _ = ablation  # ablation rows are folded into the main table above
    return ExperimentResult(
        name="mff",
        title="Modified First Fit vs First Fit (bimodal sizes) + k ablation",
        table=table,
        checks=checks,
        notes=[
            "rows with algorithm mff(k=…) other than 8/μ+7 form the k-ablation "
            "on the first seed; their 'bound' column is max{k,(μ+6)/(1−1/k)}+1."
        ],
    )
