"""Experiment E10 — the Section 1 scenario: cloud-gaming dispatch.

Serves synthetic cloud-gaming days (diurnal arrivals, Zipf game popularity)
with every algorithm in the library and reports total rental cost under
both continuous and EC2-style hourly billing, plus utilisation and how far
each algorithm sits above the OPT lower bound.

Expected shape (checked): the Any Fit family beats one-VM-per-request by a
wide margin, and everything stays above the OPT lower bound.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import (
    BestFit,
    FirstFit,
    HarmonicFit,
    ModifiedFirstFit,
    NewBinPerItem,
    NextFit,
    PackingAlgorithm,
    RandomFit,
    WorstFit,
)
from ..analysis.sweep import SweepResult
from ..cloud.dispatcher import ServerType, dispatch_trace
from ..opt.lower_bounds import opt_total_lower_bound
from ..workloads.cloud_gaming import DiurnalPattern, generate_gaming_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment


def _fleet() -> list[PackingAlgorithm]:
    return [
        FirstFit(),
        BestFit(),
        WorstFit(),
        RandomFit(seed=0),
        NextFit(),
        ModifiedFirstFit(),
        HarmonicFit(num_classes=3),
        NewBinPerItem(),
    ]


@register_experiment(
    "cloud-gaming",
    display="Section 1 scenario",
    description="Algorithm fleet on synthetic cloud-gaming days: rental cost, "
    "billing, utilisation vs OPT lower bound",
)
def run(
    seeds: Sequence[int] = (0, 1),
    horizon: float = 24 * 60.0,
    base_rate: float = 0.2,
    amplitude: float = 1.2,
) -> ExperimentResult:
    server = ServerType()
    table = SweepResult(
        headers=[
            "seed",
            "algorithm",
            "servers",
            "peak",
            "cost(cont)",
            "cost(billed)",
            "util",
            "vs_opt_lb",
        ]
    )
    anyfit_beats_naive = True
    above_lb = True
    ff_cost_by_seed = {}
    naive_cost_by_seed = {}
    for seed in seeds:
        trace = generate_gaming_trace(
            seed=seed,
            horizon=horizon,
            pattern=DiurnalPattern(base_rate=base_rate, amplitude=amplitude),
        )
        opt_lb = opt_total_lower_bound(
            trace.items, capacity=server.gpu_capacity, cost_rate=server.rate
        )
        for algo in _fleet():
            report = dispatch_trace(trace, algo, server_type=server)
            row = report.summary_row()
            ratio = float(report.continuous_cost / opt_lb)
            above_lb = above_lb and ratio >= 1 - 1e-9
            table.add(
                {
                    "seed": seed,
                    "algorithm": row["algorithm"],
                    "servers": row["servers"],
                    "peak": row["peak"],
                    "cost(cont)": row["cost(cont)"],
                    "cost(billed)": row["cost(billed)"],
                    "util": row["util"],
                    "vs_opt_lb": ratio,
                }
            )
            if algo.name == "first-fit":
                ff_cost_by_seed[seed] = report.continuous_cost
            if algo.name == "new-bin-per-item":
                naive_cost_by_seed[seed] = report.continuous_cost
        anyfit_beats_naive = anyfit_beats_naive and (
            ff_cost_by_seed[seed] < naive_cost_by_seed[seed]
        )
    return ExperimentResult(
        name="cloud-gaming",
        title="Cloud-gaming dispatch: one day of playing requests per seed",
        table=table,
        checks=[
            ClaimCheck(
                claim="every algorithm's cost is ≥ the OPT lower bound",
                holds=above_lb,
            ),
            ClaimCheck(
                claim="First Fit rents far less server-time than one-VM-per-request",
                holds=anyfit_beats_naive,
            ),
        ],
        notes=[
            "billing is EC2-style hourly (quantum = 60 min); the ranking under "
            "billed cost should match the continuous-cost ranking in shape."
        ],
    )
