"""Experiment (extension) — dynamic *vector* bin packing.

The paper's model is scalar; cloud demand is a vector (GPU, CPU, memory,
bandwidth).  This experiment packs correlated 2-D traces with the scalar
family generalised through scalarisations (First Fit; Best Fit under the
max-dimension, sum, and scarcity-weighted rules) and the two genuinely
vector-aware rules (:class:`~repro.algorithms.vector_fit.MinWeightedRemainingFit`,
:class:`~repro.algorithms.vector_fit.BalancedInterleaveFit`), measuring
cost ratios against the dominance lower bound
(:func:`~repro.opt.lower_bounds.dominance_lower_bound`).

Claims checked:

* every Any Fit variant stays within the trivial ``n`` bound and above
  the dominance lower bound (sanity of the bound itself);
* the ranking is correlation-sensitive — demand alignment changes which
  rule wins, which is why the scalarisation is a parameter and not a
  constant.
"""

from __future__ import annotations

from typing import Sequence

from ..algorithms import (
    BalancedInterleaveFit,
    BestFit,
    FirstFit,
    MinWeightedRemainingFit,
)
from ..analysis.sweep import SweepResult
from ..core.resources import Resources
from ..core.simulator import simulate
from ..opt.lower_bounds import dominance_lower_bound, naive_upper_bound
from ..workloads.distributions import Clipped, Exponential, Uniform
from ..workloads.generators import generate_vector_trace
from .registry import ClaimCheck, ExperimentResult, register_experiment

CAPACITY = Resources(1, 1)


def _algorithms():
    return (
        ("first-fit", FirstFit()),
        ("best-fit[max]", BestFit()),
        ("best-fit[sum]", BestFit(scalarization="sum")),
        ("best-fit[weighted]", BestFit(scalarization="weighted", weights=(2, 1))),
        ("min-weighted-remaining", MinWeightedRemainingFit()),
        ("balanced-interleave", BalancedInterleaveFit()),
    )


@register_experiment(
    "vector-dbp",
    display="Dynamic vector bin packing (2-D extension)",
    description="Scalarised and vector-aware Any Fit rules on correlated "
    "2-D demand, ratioed against the dominance lower bound",
)
def run(
    seeds: Sequence[int] = (0, 1, 2),
    correlations: Sequence[float] = (0.0, 0.5, 1.0),
    horizon: float = 100.0,
    rate: float = 4.0,
) -> ExperimentResult:
    table = SweepResult(
        headers=["correlation", "seed", "algorithm", "cost", "ratio_vs_lb"]
    )
    bounds_ok = True
    winners: dict[float, set[str]] = {}
    for corr in correlations:
        winners[corr] = set()
        for seed in seeds:
            trace = generate_vector_trace(
                arrival_rate=rate,
                horizon=horizon,
                duration=Clipped(Exponential(3.0), 1.0, 9.0),
                sizes=[Uniform(0.1, 0.9), Uniform(0.05, 0.6)],
                correlation=corr,
                seed=seed,
                name=f"vec-c{corr}",
                capacity=CAPACITY,
            )
            lb = float(dominance_lower_bound(trace.items, capacity=CAPACITY))
            ub = float(naive_upper_bound(trace.items))
            best_name, best_cost = None, None
            for label, algo in _algorithms():
                cost = float(
                    simulate(trace.items, algo, capacity=CAPACITY).total_cost()
                )
                ratio = cost / lb
                bounds_ok = bounds_ok and lb <= cost <= ub + 1e-9
                if best_cost is None or cost < best_cost:
                    best_name, best_cost = label, cost
                table.add(
                    {
                        "correlation": corr,
                        "seed": seed,
                        "algorithm": label,
                        "cost": cost,
                        "ratio_vs_lb": ratio,
                    }
                )
            assert best_name is not None
            winners[corr].add(best_name)
    distinct_winners = set().union(*winners.values())
    return ExperimentResult(
        name="vector-dbp",
        title="Dynamic vector bin packing: scalarisations vs vector-aware rules",
        table=table,
        checks=[
            ClaimCheck(
                claim="every run is bracketed: dominance LB ≤ cost ≤ one-bin-"
                "per-item UB",
                holds=bounds_ok,
            ),
            ClaimCheck(
                claim="no single rule wins every (correlation, seed) cell — "
                "the scalarisation choice matters",
                holds=len(distinct_winners) > 1,
                detail=f"winners: {sorted(distinct_winners)}",
            ),
        ],
        notes=[
            "The dominance lower bound is the best per-dimension projection "
            "of the pointwise load bound; vector OPT can exceed it, so "
            "ratios overestimate true competitiveness.",
            "Marginals are identical across correlation levels (comonotonic "
            "rank alignment), isolating the effect of demand alignment.",
        ],
    )
