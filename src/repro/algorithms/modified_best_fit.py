"""Modified Best Fit — the ablation that explains MFF's design.

MFF's improvement comes from two ingredients: size classification *and*
the First Fit rule inside each class.  A natural question is whether
classification alone rescues Best Fit.  It does not: Theorem 2's trap uses
items of a single tiny size, so the whole construction lives inside one
size class, where classified Best Fit behaves exactly like plain Best Fit
— still unboundedly bad.  ``ModifiedBestFit`` exists to make that argument
executable (see ``tests/test_modified_best_fit.py``); the paper's choice of
First Fit inside MFF's classes is what carries the bounded ratio.
"""

from __future__ import annotations

from typing import Sequence

from ..core.numeric import Num
from ..core.bin import Bin
from ..core.bin_index import OpenBinIndex
from ..core.resources import Resources, Size, meets_threshold, scalarize_max
from .base import Arrival, OPEN_NEW, PackingAlgorithm, _OpenNew, register_algorithm
from .modified_first_fit import LARGE, SMALL

__all__ = ["ModifiedBestFit"]


@register_algorithm("modified-best-fit")
class ModifiedBestFit(PackingAlgorithm):
    """Best Fit within MFF-style large/small pools (threshold ``W/k``)."""

    def __init__(self, k: Num = 8) -> None:
        if not k > 1:
            raise ValueError(f"modified Best Fit requires k > 1, got {k}")
        self.k = k
        self._threshold: Size | None = None

    def reset(self, capacity: Size) -> None:
        self._threshold = capacity / self.k

    def classify(self, item: Arrival) -> str:
        if self._threshold is None:
            raise RuntimeError("algorithm not reset; run it through the simulator")
        return LARGE if meets_threshold(item.size, self._threshold) else SMALL

    def choose_bin(self, item: Arrival, open_bins: Sequence[Bin]):
        wanted = self.classify(item)
        if isinstance(item.size, Resources):
            # Rank vector residuals by the canonical max-dimension rule,
            # matching the indexed path's ordering.
            best: Bin | None = None
            best_key = None
            for b in open_bins:
                if b.label == wanted and b.fits(item):
                    key = scalarize_max(b.residual)
                    if best_key is None or key < best_key:
                        best, best_key = b, key
            return best if best is not None else OPEN_NEW
        best = None
        for b in open_bins:
            if b.label == wanted and b.fits(item):
                if best is None or b.residual < best.residual:
                    best = b
        return best if best is not None else OPEN_NEW

    def choose_bin_indexed(
        self, item: Arrival, index: OpenBinIndex
    ) -> Bin | _OpenNew | None:
        # Best Fit restricted to this size class's bin pool.
        target = index.best_fit(item.size, label=self.classify(item))
        return target if target is not None else OPEN_NEW

    def on_bin_opened(self, bin: Bin, item: Arrival) -> None:
        bin.label = self.classify(item)

    def __repr__(self) -> str:
        return f"ModifiedBestFit(k={self.k})"
