"""Packing-algorithm interface and registry.

An online packing algorithm sees each item only at its arrival time — it is
handed an :class:`Arrival` view that deliberately **omits the departure
time**, enforcing the paper's online model ("the items must be assigned to
bins as they arrive without any knowledge of their departure times").

The simulator owns bin lifecycle: an algorithm only *chooses* where to place
an item.  Returning ``OPEN_NEW`` (or ``None``) asks the simulator to open a
fresh bin.  Algorithms may annotate bins via ``bin.label`` at open time (see
:meth:`PackingAlgorithm.on_bin_opened`); Modified First Fit uses this to
segregate large-item and small-item bins.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from types import NotImplementedType
from typing import Any, Callable, Sequence

from ..core.numeric import Num
from ..core.bin import Bin
from ..core.bin_index import OpenBinIndex
from ..core.resources import Size

__all__ = [
    "Arrival",
    "OPEN_NEW",
    "PackingAlgorithm",
    "AnyFitAlgorithm",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
]


@dataclass(frozen=True, slots=True)
class Arrival:
    """The online view of an arriving item: no departure time.

    Bins store these views while the item is active; the final
    :class:`~repro.core.result.PackingResult` maps ids back to full items.
    """

    item_id: str
    size: Size
    arrival: Num
    tag: Any = None


class _OpenNew:
    """Sentinel: 'open a new bin for this item'."""

    _instance: "_OpenNew | None" = None

    def __new__(cls) -> "_OpenNew":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "OPEN_NEW"


OPEN_NEW = _OpenNew()


class PackingAlgorithm(ABC):
    """Base class for online DBP packing algorithms."""

    #: Registry name; subclasses set this via :func:`register_algorithm`.
    name: str = "abstract"

    def reset(self, capacity: Size) -> None:
        """Called once at simulation start; override to clear state."""

    @abstractmethod
    def choose_bin(self, item: Arrival, open_bins: Sequence[Bin]) -> Bin | _OpenNew | None:
        """Pick an open bin for ``item`` or request a new one.

        ``open_bins`` is the list of currently open bins in opening order
        (ascending ``bin.index``).  Returning ``OPEN_NEW`` or ``None`` opens
        a new bin.  The returned bin must satisfy ``bin.fits(item)``; the
        simulator validates this and raises on violation.
        """

    def choose_bin_indexed(
        self, item: Arrival, index: OpenBinIndex
    ) -> Bin | _OpenNew | None | NotImplementedType:
        """Optional O(log n) selection against the simulator's bin index.

        The indexed counterpart of :meth:`choose_bin`: instead of a bin
        sequence to scan, the algorithm receives the simulator's
        :class:`~repro.core.bin_index.OpenBinIndex` and may answer fit
        queries (``index.first_fit(size)``, ``index.best_fit(size)``, both
        optionally per ``label`` pool) in O(log n).  Return a bin,
        ``OPEN_NEW``/``None``, or ``NotImplemented`` (the default) to fall
        back to the list scan — the simulator asks once per run and caches
        the answer, so an algorithm must either always or never support the
        indexed path.  Implementations must make exactly the choice their
        :meth:`choose_bin` would make; the differential tests assert this.
        """
        return NotImplemented

    def new_bin_capacity(self, item: Arrival) -> Size | None:
        """Capacity for a bin opened for ``item``; ``None`` = simulator default.

        Override to model heterogeneous fleets (multiple VM flavours).  The
        returned capacity must accommodate ``item``; the simulator
        validates this.
        """
        return None

    def on_bin_opened(self, bin: Bin, item: Arrival) -> None:
        """Hook after a new bin is opened for ``item`` (set ``bin.label`` here)."""

    def on_item_departed(self, item_id: str, bin: Bin) -> None:
        """Hook after an item leaves ``bin`` (bin may have just closed)."""

    def checkpoint_state(self) -> Any:
        """JSON-serializable snapshot of mutable per-run state (or ``None``).

        Most algorithms keep no per-run state beyond what ``reset`` derives
        and what bin labels carry (FF, BF, MFF, MBF) — the default ``None``
        is then exact.  Algorithms holding references to live bins (Next
        Fit's current bin) override this with :meth:`restore_state` so
        checkpoint/resume (:mod:`repro.core.checkpoint`) reproduces their
        decisions bit for bit.
        """
        return None

    def restore_state(self, state: Any, open_bins: dict[int, Bin]) -> None:
        """Restore :meth:`checkpoint_state` output after a resume.

        ``open_bins`` maps ``bin.index`` to the reconstructed open bins so
        bin references can be re-established.  Called after ``reset``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AnyFitAlgorithm(PackingAlgorithm):
    """The Any Fit family: open a new bin **only** when nothing fits.

    Subclasses implement :meth:`select` to pick among the bins that can
    accommodate the item; the Any Fit property (never open a bin while some
    open bin fits) is guaranteed here, mirroring the paper's definition that
    First Fit and Best Fit are special cases of Any Fit.
    """

    def choose_bin(self, item: Arrival, open_bins: Sequence[Bin]) -> Bin | _OpenNew:
        fitting = [b for b in open_bins if b.fits(item)]
        if not fitting:
            return OPEN_NEW
        return self.select(item, fitting)

    @abstractmethod
    def select(self, item: Arrival, fitting_bins: Sequence[Bin]) -> Bin:
        """Choose among ``fitting_bins`` (non-empty, opening order)."""


# --------------------------------------------------------------------------
# Registry


_REGISTRY: dict[str, Callable[..., PackingAlgorithm]] = {}


def register_algorithm(name: str) -> Callable[[type], type]:
    """Class decorator registering an algorithm factory under ``name``."""

    def deco(cls: type) -> type:
        if name in _REGISTRY:
            raise ValueError(f"algorithm {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def get_algorithm(name: str, /, **kwargs: Any) -> PackingAlgorithm:
    """Instantiate a registered algorithm by name.

    >>> get_algorithm("first-fit")
    FirstFit()
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory(**kwargs)


def available_algorithms() -> list[str]:
    """Sorted names of all registered algorithms."""
    return sorted(_REGISTRY)
