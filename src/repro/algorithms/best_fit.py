"""Best Fit packing (Section 3.2 of the paper).

"Best Fit packing tries to put it into the best opened bin, i.e., the one
with the smallest residual capacity after adding the item."  Equivalently,
among the bins that fit, pick the one with the highest current level.
Theorem 2 shows Best Fit has **no bounded competitive ratio** for MinTotal
DBP, for any fixed μ — the adversary in
:mod:`repro.adversaries.bestfit_unbounded` realises the construction.

Ties (equal levels) are broken towards the earliest-opened bin, which is the
deterministic choice the paper's Theorem 2 construction assumes ("the bin
with the highest level in the system" is unique there, so the tiebreak never
fires in that instance).

Vector runs need a *scalarisation* to rank residual vectors ("smallest
residual" is ambiguous under dominance): the default max-dimension rule
ranks by the tightest worst dimension and reduces to the scalar rule in
1-D; ``BestFit(scalarization="sum")`` or ``("weighted", weights)`` pick
alternatives.  Only the canonical max rule has an indexed path — the bin
index keys its ordered list on it — so other scalarisations fall back to
the list scan.
"""

from __future__ import annotations

from types import NotImplementedType
from typing import Callable, Sequence

from ..core.bin import Bin
from ..core.bin_index import OpenBinIndex
from ..core.numeric import Num
from ..core.resources import Resources, Size, get_scalarization
from .base import OPEN_NEW, AnyFitAlgorithm, Arrival, _OpenNew, register_algorithm

__all__ = ["BestFit"]


@register_algorithm("best-fit")
class BestFit(AnyFitAlgorithm):
    """Place each item into the fitting bin with the least residual capacity.

    Parameters
    ----------
    scalarization:
        How vector residuals are ranked: ``"max"`` (default, canonical),
        ``"sum"``, ``"weighted"`` (requires ``weights``), or any callable
        mapping a size to a ``Num``.  Ignored for scalar runs, which always
        compare residuals directly.
    weights:
        Per-dimension weights for the ``"weighted"`` scalarisation.
    """

    def __init__(
        self,
        scalarization: "str | Callable[[Size], Num]" = "max",
        weights: Sequence[Num] | None = None,
    ) -> None:
        self._scal = get_scalarization(scalarization, weights=weights)
        self._canonical = scalarization == "max"
        self._spec = scalarization

    def select(self, item: Arrival, fitting_bins: Sequence[Bin]) -> Bin:
        best = fitting_bins[0]
        if not isinstance(best.residual, Resources):
            for candidate in fitting_bins[1:]:
                if candidate.residual < best.residual:
                    best = candidate
            return best
        best_key = self._scal(best.residual)
        for candidate in fitting_bins[1:]:
            key = self._scal(candidate.residual)
            if key < best_key:
                best, best_key = candidate, key
        return best

    def choose_bin_indexed(
        self, item: Arrival, index: OpenBinIndex
    ) -> Bin | _OpenNew | None | NotImplementedType:
        # Tightest fit by binary search on the ordered residual index;
        # residual ties resolve to the earliest-opened bin, as in select().
        # The index ranks vector residuals by the canonical max rule only,
        # so other scalarisations take the list scan.
        if not self._canonical and isinstance(item.size, Resources):
            return NotImplemented
        target = index.best_fit(item.size)
        return target if target is not None else OPEN_NEW

    def __repr__(self) -> str:
        if self._canonical:
            return "BestFit()"
        return f"BestFit(scalarization={self._spec!r})"
