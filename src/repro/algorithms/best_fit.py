"""Best Fit packing (Section 3.2 of the paper).

"Best Fit packing tries to put it into the best opened bin, i.e., the one
with the smallest residual capacity after adding the item."  Equivalently,
among the bins that fit, pick the one with the highest current level.
Theorem 2 shows Best Fit has **no bounded competitive ratio** for MinTotal
DBP, for any fixed μ — the adversary in
:mod:`repro.adversaries.bestfit_unbounded` realises the construction.

Ties (equal levels) are broken towards the earliest-opened bin, which is the
deterministic choice the paper's Theorem 2 construction assumes ("the bin
with the highest level in the system" is unique there, so the tiebreak never
fires in that instance).
"""

from __future__ import annotations

from typing import Sequence

from ..core.bin import Bin
from ..core.bin_index import OpenBinIndex
from .base import OPEN_NEW, AnyFitAlgorithm, Arrival, _OpenNew, register_algorithm

__all__ = ["BestFit"]


@register_algorithm("best-fit")
class BestFit(AnyFitAlgorithm):
    """Place each item into the fitting bin with the least residual capacity."""

    def select(self, item: Arrival, fitting_bins: Sequence[Bin]) -> Bin:
        best = fitting_bins[0]
        for candidate in fitting_bins[1:]:
            if candidate.residual < best.residual:
                best = candidate
        return best

    def choose_bin_indexed(
        self, item: Arrival, index: OpenBinIndex
    ) -> Bin | _OpenNew | None:
        # Tightest fit by binary search on the ordered residual index;
        # residual ties resolve to the earliest-opened bin, as in select().
        target = index.best_fit(item.size)
        return target if target is not None else OPEN_NEW
