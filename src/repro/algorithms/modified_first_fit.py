"""Modified First Fit (Section 4.4 of the paper).

MFF classifies items by size against the threshold ``W/k``: items with
``s(r) ≥ W/k`` are *large*, the rest are *small*.  Large and small items are
packed by classical First Fit into **separate pools of bins** — a small item
never shares a bin with a large item.

Competitive ratios proved in the paper:

* μ unknown: with ``k = 8``, MFF is ``(8/7)μ + 55/7``-competitive.
* μ known: with ``k = μ + 7``, MFF is ``(μ + 8)``-competitive (semi-online).

``MFF()`` uses ``k = 8``; ``MFF.with_known_mu(mu)`` sets ``k = μ + 7``.
"""

from __future__ import annotations

from typing import Sequence

from ..core.numeric import Num
from ..core.bin import Bin
from ..core.bin_index import OpenBinIndex
from ..core.resources import Size, meets_threshold
from .base import Arrival, OPEN_NEW, PackingAlgorithm, _OpenNew, register_algorithm

__all__ = ["ModifiedFirstFit", "LARGE", "SMALL"]

#: Bin labels used to segregate the two pools.
LARGE = "large"
SMALL = "small"


@register_algorithm("modified-first-fit")
class ModifiedFirstFit(PackingAlgorithm):
    """First Fit on two size classes packed into disjoint bin pools.

    Parameters
    ----------
    k:
        Size-class threshold parameter (> 1): items of size ≥ W/k are
        large.  The default ``k = 8`` is the paper's choice when μ is
        unknown.
    """

    def __init__(self, k: Num = 8) -> None:
        if not k > 1:
            raise ValueError(f"MFF requires k > 1, got {k}")
        self.k = k
        self._threshold: Size | None = None

    @classmethod
    def with_known_mu(cls, mu: Num) -> "ModifiedFirstFit":
        """The semi-online variant: ``k = μ + 7``, ratio ``μ + 8``."""
        if mu < 1:
            raise ValueError(f"μ is a max/min ratio and must be ≥ 1, got {mu}")
        return cls(k=mu + 7)

    def reset(self, capacity: Size) -> None:
        self._threshold = capacity / self.k

    def classify(self, item: Arrival) -> str:
        """LARGE if ``s(r) ≥ W/k`` else SMALL.

        Vector items are LARGE when *any* dimension reaches ``W_d/k`` —
        one heavy dimension is enough to justify a dedicated-pool bin.
        """
        if self._threshold is None:
            raise RuntimeError("algorithm not reset; run it through the simulator")
        return LARGE if meets_threshold(item.size, self._threshold) else SMALL

    def choose_bin(self, item: Arrival, open_bins: Sequence[Bin]):
        wanted = self.classify(item)
        for b in open_bins:  # opening order == First Fit order, per pool
            if b.label == wanted and b.fits(item):
                return b
        return OPEN_NEW

    def choose_bin_indexed(
        self, item: Arrival, index: OpenBinIndex
    ) -> Bin | _OpenNew | None:
        # First Fit restricted to this size class's bin pool.
        target = index.first_fit(item.size, label=self.classify(item))
        return target if target is not None else OPEN_NEW

    def on_bin_opened(self, bin: Bin, item: Arrival) -> None:
        bin.label = self.classify(item)

    def __repr__(self) -> str:
        return f"ModifiedFirstFit(k={self.k})"
