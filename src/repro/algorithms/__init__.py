"""Online packing algorithms for the MinTotal DBP problem.

The family structure mirrors Section 3.2 of the paper: Any Fit algorithms
(never open a bin while one fits) with First Fit and Best Fit as the two
canonical members, plus Modified First Fit (Section 4.4) and baselines.
Algorithms are also available by registry name via :func:`get_algorithm`.
"""

from .base import (
    AnyFitAlgorithm,
    Arrival,
    OPEN_NEW,
    PackingAlgorithm,
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from .any_fit import AnyFit, LastFit, RandomFit, WorstFit
from .baselines import NewBinPerItem, NextFit
from .best_fit import BestFit
from .first_fit import FirstFit
from .harmonic import HarmonicFit
from .modified_best_fit import ModifiedBestFit
from .modified_first_fit import LARGE, SMALL, ModifiedFirstFit
from .vector_fit import BalancedInterleaveFit, MinWeightedRemainingFit

__all__ = [
    "PackingAlgorithm",
    "AnyFitAlgorithm",
    "Arrival",
    "OPEN_NEW",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "LastFit",
    "RandomFit",
    "AnyFit",
    "NextFit",
    "NewBinPerItem",
    "HarmonicFit",
    "ModifiedFirstFit",
    "ModifiedBestFit",
    "MinWeightedRemainingFit",
    "BalancedInterleaveFit",
    "LARGE",
    "SMALL",
]
