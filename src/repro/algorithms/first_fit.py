"""First Fit packing (Section 3.2 of the paper).

"Each time when a new item arrives, First Fit packing tries to put it into
the earliest opened bin that can accommodate it."  Theorem 5 shows FF is
``(2μ + 13)``-competitive for MinTotal DBP; Theorem 4 tightens this to
``(k/(k-1))μ + 6k/(k-1) + 1`` when all item sizes are below ``W/k``.
"""

from __future__ import annotations

from typing import Sequence

from ..core.bin import Bin
from ..core.bin_index import OpenBinIndex
from .base import OPEN_NEW, AnyFitAlgorithm, Arrival, _OpenNew, register_algorithm

__all__ = ["FirstFit"]


@register_algorithm("first-fit")
class FirstFit(AnyFitAlgorithm):
    """Place each item into the earliest-opened bin that fits it."""

    def choose_bin(self, item: Arrival, open_bins: Sequence[Bin]):
        # Fast path (profiled: the full fitting-list scan dominated
        # simulation time): First Fit only needs the first fitting bin.
        for b in open_bins:
            if b.fits(item):
                return b
        return OPEN_NEW

    def choose_bin_indexed(
        self, item: Arrival, index: OpenBinIndex
    ) -> Bin | _OpenNew | None:
        # Lowest-index bin with sufficient residual: segment-tree descent
        # for scalar sizes, candidate-intersection sweep for vectors.
        target = index.first_fit(item.size)
        return target if target is not None else OPEN_NEW

    def select(self, item: Arrival, fitting_bins: Sequence[Bin]) -> Bin:
        # fitting_bins preserves opening order, so the first is the earliest.
        return fitting_bins[0]
