"""Harmonic-style size-class packing (extension beyond the paper).

The paper's Modified First Fit splits items into two size classes.  The
natural generalisation — and the classical-bin-packing workhorse since Lee &
Lee's HARMONIC — is to split into ``M`` harmonic classes: class ``j``
(1 ≤ j < M) holds items with size in ``(W/(j+1), W/j]``, and the final class
holds everything of size ≤ ``W/M``.  Each class is packed by First Fit into
its own pool of bins, so a class-``j`` bin holds at most ``j`` items.

This is the "future work"-flavoured ablation referenced in DESIGN.md: it
lets experiments ask whether more size classes help MinTotal DBP the way
they help classical bin packing.  (Spoiler from experiment E8/E10: finer
classes waste span — each class pays its own span term — so moderate M is
best, echoing why the paper stops at two classes.)
"""

from __future__ import annotations

from typing import Sequence

from ..core.numeric import Num
from ..core.bin import Bin
from ..core.resources import Size, exceeds_threshold
from .base import Arrival, OPEN_NEW, PackingAlgorithm, register_algorithm

__all__ = ["HarmonicFit"]


@register_algorithm("harmonic-fit")
class HarmonicFit(PackingAlgorithm):
    """First Fit within harmonic size classes.

    Parameters
    ----------
    num_classes:
        The number of harmonic classes ``M ≥ 1``.  ``M = 1`` degenerates to
        plain First Fit.
    """

    def __init__(self, num_classes: int = 4) -> None:
        if num_classes < 1:
            raise ValueError(f"need at least one class, got {num_classes}")
        self.num_classes = num_classes
        self._capacity: Size | None = None

    def reset(self, capacity: Size) -> None:
        self._capacity = capacity

    def classify(self, item: Arrival) -> int:
        """Harmonic class of an item: smallest j with size > W/(j+1), capped at M.

        Vector items classify by their *heaviest* dimension relative to
        capacity (any dimension above the class boundary promotes the
        item), degenerating to the scalar rule in 1-D.
        """
        if self._capacity is None:
            raise RuntimeError("algorithm not reset; run it through the simulator")
        w = self._capacity
        for j in range(1, self.num_classes):
            if exceeds_threshold(item.size, w / (j + 1)):
                return j
        return self.num_classes

    def choose_bin(self, item: Arrival, open_bins: Sequence[Bin]):
        wanted = self.classify(item)
        for b in open_bins:
            if b.label == wanted and b.fits(item):
                return b
        return OPEN_NEW

    def on_bin_opened(self, bin: Bin, item: Arrival) -> None:
        bin.label = self.classify(item)

    def __repr__(self) -> str:
        return f"HarmonicFit(num_classes={self.num_classes})"
