"""Additional Any Fit family members and a generic pluggable Any Fit.

The paper analyses Any Fit as a family ("the family of packing algorithms
that open a new bin only when no currently opened bin can accommodate the
item").  Theorem 1's lower bound of μ applies to *every* member, so this
module provides several members beyond FF/BF to exercise that claim
empirically:

* Worst Fit — fitting bin with the largest residual capacity;
* Last Fit — most recently opened fitting bin;
* Random Fit — uniformly random fitting bin (seeded);
* ``AnyFit(rule)`` — any user-supplied selection rule, with the family
  property (never open a bin while one fits) enforced by the base class.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..core.bin import Bin
from ..core.resources import Resources, scalarize_max
from .base import AnyFitAlgorithm, Arrival, register_algorithm

__all__ = ["WorstFit", "LastFit", "RandomFit", "AnyFit"]


@register_algorithm("worst-fit")
class WorstFit(AnyFitAlgorithm):
    """Place each item into the fitting bin with the most residual capacity."""

    def select(self, item: Arrival, fitting_bins: Sequence[Bin]) -> Bin:
        best = fitting_bins[0]
        if isinstance(best.residual, Resources):
            best_key = scalarize_max(best.residual)
            for candidate in fitting_bins[1:]:
                key = scalarize_max(candidate.residual)
                if key > best_key:
                    best, best_key = candidate, key
            return best
        for candidate in fitting_bins[1:]:
            if candidate.residual > best.residual:
                best = candidate
        return best


@register_algorithm("last-fit")
class LastFit(AnyFitAlgorithm):
    """Place each item into the most recently opened bin that fits."""

    def select(self, item: Arrival, fitting_bins: Sequence[Bin]) -> Bin:
        return fitting_bins[-1]


@register_algorithm("random-fit")
class RandomFit(AnyFitAlgorithm):
    """Place each item into a uniformly random fitting bin.

    Deterministic given ``seed``; reset at every simulation start so the
    same instance can be reused across runs reproducibly.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self, capacity) -> None:
        self._rng = random.Random(self.seed)

    def select(self, item: Arrival, fitting_bins: Sequence[Bin]) -> Bin:
        return self._rng.choice(fitting_bins)

    def __repr__(self) -> str:
        return f"RandomFit(seed={self.seed})"


class AnyFit(AnyFitAlgorithm):
    """Generic Any Fit with a user-supplied selection rule.

    ``rule(item, fitting_bins)`` must return one of ``fitting_bins``.  Use
    this to test novel heuristics against Theorem 1's universal μ lower
    bound without writing a class:

    >>> most_items = AnyFit(lambda item, bins: max(bins, key=lambda b: b.num_items))
    """

    name = "any-fit"

    def __init__(self, rule: Callable[[Arrival, Sequence[Bin]], Bin], name: str | None = None):
        self._rule = rule
        if name is not None:
            self.name = name

    def select(self, item: Arrival, fitting_bins: Sequence[Bin]) -> Bin:
        return self._rule(item, fitting_bins)
