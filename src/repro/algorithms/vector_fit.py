"""Vector-aware Any Fit rules (beyond the paper's scalar family).

Scalar-tuned Any Fit rules rank bins by a single residual number and can
mispack badly when dimensions conflict — a bin may look half-empty by
total residual while one dimension is nearly exhausted.  The two rules
here are modelled on the allocator families of HPC/cloud schedulers such
as AccaSim (Weighted/Balanced/Hybrid allocators) and the DVBP heuristics
of Murhekar et al.:

* :class:`MinWeightedRemainingFit` — the *Weighted* idea: charge each
  dimension's leftover by a scarcity weight and take the fitting bin
  whose post-placement weighted residual is smallest.  With uniform
  weights in 1-D this is exactly Best Fit.
* :class:`BalancedInterleaveFit` — the *Balanced/Hybrid* idea: avoid
  fragmenting any single dimension by picking the fitting bin whose
  post-placement per-dimension utilisations are most even (smallest
  max−min spread), interleaving complementary items (GPU-heavy with
  memory-heavy) into the same bin.  In 1-D the spread is always zero and
  the rule degenerates to First Fit.

Both are proper Any Fit members — they never open a bin while some open
bin fits — so Theorem 1's μ lower bound applies to them unchanged.
"""

from __future__ import annotations

from typing import Sequence

from ..core.bin import Bin
from ..core.numeric import Num
from ..core.resources import Resources, Size
from .base import AnyFitAlgorithm, Arrival, register_algorithm

__all__ = ["MinWeightedRemainingFit", "BalancedInterleaveFit"]


def _vector_view(value: Size, dims: int) -> tuple[Num, ...]:
    """Components of a size, broadcasting scalars (scalar bins in 1-D runs)."""
    if isinstance(value, Resources):
        return value.values
    return (value,) * dims


@register_algorithm("min-weighted-remaining")
class MinWeightedRemainingFit(AnyFitAlgorithm):
    """Fitting bin minimising the weighted post-placement residual.

    For a fitting bin ``b`` the rule scores
    ``Σ_d w_d · (residual_d − size_d)`` and takes the smallest score,
    breaking ties towards the earliest-opened bin.

    Parameters
    ----------
    weights:
        Per-dimension scarcity weights (non-negative, at least one
        positive).  ``None`` (default) weights every dimension by the
        inverse of the run's default capacity, so each dimension's
        leftover is charged as a *fraction* of its bin — scarce, small
        dimensions count as much as abundant, large ones.
    """

    def __init__(self, weights: Sequence[Num] | None = None) -> None:
        if weights is not None:
            ws = tuple(weights)
            if not ws or any(w < 0 for w in ws) or not any(w > 0 for w in ws):
                raise ValueError(
                    f"weights must be non-negative with a positive entry, got {ws!r}"
                )
            self._explicit: tuple[Num, ...] | None = ws
        else:
            self._explicit = None
        self._weights: tuple[Num, ...] | None = self._explicit
        self._default_capacity: Size = 1

    def reset(self, capacity: Size) -> None:
        if self._explicit is not None:
            self._weights = self._explicit
        elif isinstance(capacity, Resources):
            self._weights = tuple(1 / w for w in capacity.values)
        else:
            # Scalar capacity: the broadcast dimension count is only known
            # per item; 1/W applies uniformly.
            self._weights = None
        self._default_capacity = capacity

    def _weights_for(self, dims: int) -> tuple[Num, ...]:
        if self._weights is not None:
            if len(self._weights) != dims:
                raise ValueError(
                    f"{len(self._weights)} weights for {dims}-D items"
                )
            return self._weights
        cap = self._default_capacity
        assert not isinstance(cap, Resources)
        return (1 / cap,) * dims

    def select(self, item: Arrival, fitting_bins: Sequence[Bin]) -> Bin:
        size = item.size
        dims = size.dims if isinstance(size, Resources) else 1
        weights = self._weights_for(dims)
        need = _vector_view(size, dims)
        best = fitting_bins[0]
        best_score = self._score(best, need, weights, dims)
        for candidate in fitting_bins[1:]:
            score = self._score(candidate, need, weights, dims)
            if score < best_score:
                best, best_score = candidate, score
        return best

    @staticmethod
    def _score(
        bin: Bin, need: tuple[Num, ...], weights: tuple[Num, ...], dims: int
    ) -> Num:
        residual = _vector_view(bin.residual, dims)
        score: Num = 0
        for d in range(dims):
            score = score + weights[d] * (residual[d] - need[d])
        return score

    def __repr__(self) -> str:
        if self._explicit is None:
            return "MinWeightedRemainingFit()"
        return f"MinWeightedRemainingFit(weights={list(self._explicit)!r})"


@register_algorithm("balanced-interleave")
class BalancedInterleaveFit(AnyFitAlgorithm):
    """Fragmentation-avoiding interleave: balance per-dimension utilisation.

    Scores a fitting bin by the spread ``max_d u_d − min_d u_d`` of its
    post-placement utilisations ``u_d = (level_d + size_d) / W_d`` and
    takes the smallest spread, ties to the earliest-opened bin.  Packing a
    GPU-heavy item into a memory-heavy bin lowers the spread, so
    complementary demands interleave instead of each dimension being
    exhausted separately — the fragmentation mode scalar rules fall into.

    Utilisations are compared as floats: the spread is a ranking
    heuristic, not an exactness-critical quantity, and the tie-break is
    still the deterministic opening order.
    """

    def select(self, item: Arrival, fitting_bins: Sequence[Bin]) -> Bin:
        size = item.size
        dims = size.dims if isinstance(size, Resources) else 1
        need = _vector_view(size, dims)
        best = fitting_bins[0]
        best_spread = self._spread(best, need, dims)
        for candidate in fitting_bins[1:]:
            spread = self._spread(candidate, need, dims)
            if spread < best_spread:
                best, best_spread = candidate, spread
        return best

    @staticmethod
    def _spread(bin: Bin, need: tuple[Num, ...], dims: int) -> float:
        level = _vector_view(bin.level, dims)
        cap = _vector_view(bin.capacity, dims)
        utils = [float((level[d] + need[d]) / cap[d]) for d in range(dims)]
        return max(utils) - min(utils)
