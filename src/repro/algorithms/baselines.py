"""Baseline policies outside the Any Fit family.

These bracket the Any Fit algorithms in experiments:

* :class:`NewBinPerItem` realises bound (b.3): every item gets its own bin,
  so ``A_total(R) = C · Σ_r len(I(r))`` exactly — the natural upper
  baseline ("one VM per playing request").
* :class:`NextFit` keeps a single *current* bin and opens a new one when an
  item does not fit there, even if older bins have room.  It is **not** an
  Any Fit algorithm, so Theorem 1's μ lower bound does not automatically
  cover it; experiments show it is simply worse in cost.
"""

from __future__ import annotations

from typing import Sequence

from ..core.bin import Bin
from .base import Arrival, OPEN_NEW, PackingAlgorithm, register_algorithm

__all__ = ["NewBinPerItem", "NextFit"]


@register_algorithm("new-bin-per-item")
class NewBinPerItem(PackingAlgorithm):
    """Open a fresh bin for every arriving item (bound b.3 made concrete)."""

    def choose_bin(self, item: Arrival, open_bins: Sequence[Bin]):
        return OPEN_NEW


@register_algorithm("next-fit")
class NextFit(PackingAlgorithm):
    """Keep one current bin; open a new current bin whenever an item misses.

    The DBP adaptation of classical Next Fit: the current bin is the most
    recently opened one that is still open.  If the current bin closed
    (all its items departed), the next arrival opens a fresh bin.
    """

    def __init__(self) -> None:
        self._current: Bin | None = None

    def reset(self, capacity) -> None:
        self._current = None

    def choose_bin(self, item: Arrival, open_bins: Sequence[Bin]):
        current = self._current
        if current is not None and current.is_open and current.fits(item):
            return current
        return OPEN_NEW

    def on_bin_opened(self, bin: Bin, item: Arrival) -> None:
        self._current = bin

    def checkpoint_state(self):
        current = self._current
        if current is not None and current.is_open:
            return current.index
        return None

    def restore_state(self, state, open_bins) -> None:
        self._current = open_bins.get(state) if state is not None else None
