"""Canonical instances from the paper, as named constructors.

Small, exactly-analysable item lists used across docs, tests and examples:
each returns items whose packing behaviour is derived by hand from the
paper's definitions, so they double as executable documentation.
"""

from __future__ import annotations

from fractions import Fraction

from .core.item import Item, make_items

__all__ = [
    "figure1_span_example",
    "theorem1_static_instance",
    "first_fit_vs_best_fit_separator",
    "pinned_bin_example",
]


def figure1_span_example() -> list[Item]:
    """The Figure 1 shape: overlapping items plus a detached one.

    ``span = 8`` (union [0,6] ∪ [9,11]) while the packing period is 11 and
    the summed lengths are 10 — the three quantities Figure 1 separates.
    """
    return make_items([(0, 4, Fraction(1, 4)), (2, 6, Fraction(1, 4)), (9, 11, Fraction(1, 4))],
                      prefix="fig1")


def theorem1_static_instance(k: int, mu: int) -> list[Item]:
    """A *static* Theorem 1 instance (tailored to sequential-filling AFs).

    ``k²`` items of size 1/k arrive at t=0.  Any Fit algorithms fill bins
    sequentially here (every bin reaches level exactly 1 before the next
    opens), so items ``0..k-1`` share bin 0, ``k..2k-1`` bin 1, etc.  The
    first item of each block survives to μΔ; the rest leave at Δ = 1.

    For the adaptive construction that traps *any* placement pattern, use
    :func:`repro.adversaries.run_theorem1_adversary`.
    """
    if k < 2 or mu < 1:
        raise ValueError("need k ≥ 2 and μ ≥ 1")
    items = []
    for i in range(k * k):
        lifetime = mu if i % k == 0 else 1
        items.append(
            Item(arrival=0, departure=lifetime, size=Fraction(1, k), item_id=f"t1s-{i}")
        )
    return items


def first_fit_vs_best_fit_separator() -> list[Item]:
    """A four-item instance where FF and BF choose different bins.

    After ``probe`` arrives (t=2), bin 0 sits at level 0.3 and bin 1 at
    0.6; First Fit sends the probe to bin 0 (earliest), Best Fit to bin 1
    (fullest).  Used to pin the selection-rule semantics.
    """
    return make_items(
        [
            (0, 10, Fraction(3, 10)),
            (0, 2, Fraction(6, 10)),
            (1, 10, Fraction(6, 10)),
            (2, 10, Fraction(35, 100)),
        ],
        prefix="sep",
    )


def pinned_bin_example() -> list[Item]:
    """The clairvoyance motif: a long item pins a soon-to-close bin open.

    Blind First Fit places the ``t=1`` item into bin 0 (earliest), keeping
    it open until 12 for a total cost of 24; a departure-aware policy
    routes it to bin 1 and pays 14.
    """
    return make_items([(0, 2, Fraction(6, 10)), (0, 12, Fraction(6, 10)), (1, 12, Fraction(3, 10))],
                      prefix="pin")
