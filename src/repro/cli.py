"""Command-line interface: run experiments, generate and dispatch traces.

Usage::

    python -m repro list
    python -m repro run thm1-anyfit
    python -m repro run all --strict
    python -m repro algorithms
    python -m repro generate --kind gaming --seed 7 --out day.json
    python -m repro dispatch day.json --algorithm best-fit
    python -m repro dispatch day.json --trace-out day.trace.jsonl --metrics obs/
    python -m repro verify-trace day.trace.jsonl
    python -m repro viz day.json --algorithm first-fit --width 72
    python -m repro chaos --seed 7 --workers 4 --out chaos.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .algorithms import available_algorithms, get_algorithm
from .experiments import available_experiments, experiment_info, get_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mintotal-dbp",
        description="MinTotal Dynamic Bin Packing — reproduction of Li, Tang & "
        "Cai (SPAA 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments")
    sub.add_parser("algorithms", help="list the registered packing algorithms")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment name from 'list', or 'all'")
    run_p.add_argument(
        "--precision", type=int, default=4, help="significant digits in tables"
    )
    run_p.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any paper claim fails",
    )
    run_p.add_argument(
        "--out", type=Path, default=None, help="also write results as JSON to this path"
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard experiments across N worker processes (results are "
        "identical to the serial run; progress goes to stderr)",
    )
    run_p.add_argument(
        "--serve-metrics",
        type=int,
        nargs="?",
        const=0,
        default=None,
        metavar="PORT",
        help="serve the fleet-wide merged registry live over HTTP while "
        "experiments run (omit the port for an ephemeral one; the URL is "
        "printed to stderr)",
    )

    gen_p = sub.add_parser("generate", help="generate a synthetic trace file")
    gen_p.add_argument(
        "--kind",
        choices=["gaming", "poisson", "bursts"],
        default="gaming",
        help="workload family",
    )
    gen_p.add_argument("--seed", type=int, default=0)
    gen_p.add_argument("--horizon", type=float, default=24 * 60.0, help="trace length")
    gen_p.add_argument("--rate", type=float, default=1.0, help="arrival rate (poisson/bursts)")
    gen_p.add_argument("--out", type=Path, required=True, help="output .json or .csv path")

    disp_p = sub.add_parser("dispatch", help="serve a trace file with one algorithm")
    disp_p.add_argument("trace", type=Path, help=".json or .csv trace file")
    disp_p.add_argument(
        "--algorithm",
        default="first-fit",
        help="registry name, or a comma-separated list to compare several",
    )
    disp_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="with a list of algorithms: dispatch them across N worker "
        "processes (the comparison table is identical to the serial run)",
    )
    disp_p.add_argument("--capacity", type=float, default=1.0, help="bin capacity W")
    disp_p.add_argument("--rate", type=float, default=1.0, help="cost rate C")
    disp_p.add_argument(
        "--quantum", type=float, default=None, help="billing quantum (e.g. 60 for hourly)"
    )
    disp_p.add_argument(
        "--migration-factor",
        type=float,
        default=None,
        metavar="BETA",
        help="migration-bounded dispatch: every arriving session of size s "
        "grants BETA*s of moved-size budget to a consolidating repacker "
        "(0 keeps the run byte-identical to no-migration); switches to "
        "streamed dispatch",
    )
    disp_p.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write a lifecycle trace (JSONL) to this path; switches to "
        "streamed dispatch",
    )
    disp_p.add_argument(
        "--metrics",
        type=Path,
        default=None,
        help="write metrics.json / metrics.prom / manifest.json into this "
        "directory; switches to streamed dispatch",
    )
    disp_p.add_argument(
        "--profile",
        action="store_true",
        help="profile hot paths (adds profile.json to --metrics, prints a "
        "phase report); switches to streamed dispatch",
    )
    disp_p.add_argument(
        "--serve-metrics",
        type=int,
        nargs="?",
        const=0,
        default=None,
        metavar="PORT",
        help="serve /metrics, /snapshot.json, /healthz, /readyz live from "
        "the running dispatch (omit the port for an ephemeral one) with a "
        "heartbeat line on stderr; switches to streamed dispatch",
    )

    vt_p = sub.add_parser(
        "verify-trace", help="replay a lifecycle trace and check its summary"
    )
    vt_p.add_argument("trace", type=Path, help="JSONL trace written by --trace-out")

    report_p = sub.add_parser("report", help="run experiments and write a markdown report")
    report_p.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: the whole catalogue)",
    )
    report_p.add_argument("--out", type=Path, default=None, help="output .md path (default: stdout)")
    report_p.add_argument("--precision", type=int, default=4)

    viz_p = sub.add_parser("viz", help="render a packing timeline for a trace file")
    viz_p.add_argument("trace", type=Path)
    viz_p.add_argument("--algorithm", default="first-fit")
    viz_p.add_argument("--capacity", type=float, default=1.0)
    viz_p.add_argument("--width", type=int, default=72)
    viz_p.add_argument("--max-bins", type=int, default=24)

    chaos_p = sub.add_parser(
        "chaos",
        help="run the seeded chaos campaign (crash/resume, corruption "
        "detection, worker kills) and report its invariants",
    )
    chaos_p.add_argument("--seed", type=int, default=0, help="campaign seed")
    chaos_p.add_argument(
        "--items", type=int, default=200, help="sessions per scenario"
    )
    chaos_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard in-process scenarios across N pool workers (the report "
        "is byte-identical at any worker count)",
    )
    chaos_p.add_argument(
        "--no-worker-kill",
        action="store_true",
        help="skip the pool worker-kill scenario",
    )
    chaos_p.add_argument(
        "--out", type=Path, default=None, help="write the campaign report JSON here"
    )
    chaos_p.add_argument(
        "--serve-metrics",
        type=int,
        nargs="?",
        const=0,
        default=None,
        metavar="PORT",
        help="serve live campaign-progress metrics over HTTP while the "
        "scenarios run (omit the port for an ephemeral one)",
    )
    return parser


def _load_trace(path: Path):
    from .workloads import Trace

    text = path.read_text()
    if path.suffix == ".csv":
        return Trace.from_csv(text, name=path.stem)
    return Trace.from_json(text)


def _cmd_generate(args: argparse.Namespace) -> int:
    from .workloads import (
        Clipped,
        Exponential,
        Uniform,
        generate_burst_trace,
        generate_gaming_trace,
        generate_trace,
    )

    if args.kind == "gaming":
        trace = generate_gaming_trace(seed=args.seed, horizon=args.horizon)
    elif args.kind == "poisson":
        trace = generate_trace(
            arrival_rate=args.rate,
            horizon=args.horizon,
            duration=Clipped(Exponential(30.0), 5.0, 240.0),
            size=Uniform(0.1, 0.6),
            seed=args.seed,
        )
    else:
        trace = generate_burst_trace(
            num_bursts=max(1, int(args.horizon // 30)),
            burst_size=max(1, int(args.rate * 30)),
            burst_spacing=30.0,
            duration=Clipped(Exponential(30.0), 5.0, 240.0),
            size=Uniform(0.1, 0.6),
            seed=args.seed,
        )
    payload = trace.to_csv() if args.out.suffix == ".csv" else trace.to_json()
    args.out.write_text(payload)
    stats = trace.stats
    print(
        f"wrote {len(trace)} items to {args.out} "
        f"(span {float(stats.span):.4g}, mu {float(stats.mu):.4g})"
    )
    return 0


def _dispatch_task(task: dict) -> dict:
    """Worker-side shard body for ``dispatch --workers``: one algorithm.

    Receives only plain data (trace path and server parameters), reloads
    the trace in the worker, and returns the summary row — so shards stay
    cheap to pickle and fully independent.
    """
    from .cloud import ServerType, dispatch_trace

    trace = _load_trace(Path(task["trace"]))
    server = ServerType(
        gpu_capacity=task["capacity"],
        rate=task["rate"],
        billing_quantum=task["quantum"],
    )
    report = dispatch_trace(trace, get_algorithm(task["algorithm"]), server_type=server)
    return dict(report.summary_row())


def _cmd_dispatch(args: argparse.Namespace) -> int:
    from .cloud import ServerType, dispatch_trace

    algorithms = [name.strip() for name in args.algorithm.split(",") if name.strip()]
    for name in algorithms:
        get_algorithm(name)  # fail fast on unknown names
    observed = (
        args.trace_out is not None
        or args.metrics is not None
        or args.profile
        or args.serve_metrics is not None
    )
    migrating = args.migration_factor is not None
    if len(algorithms) > 1:
        if observed or migrating:
            print(
                "dispatch: --trace-out/--metrics/--profile/--serve-metrics/"
                "--migration-factor need a single --algorithm",
                file=sys.stderr,
            )
            return 2
        return _dispatch_compare(args, algorithms)
    trace = _load_trace(args.trace)
    algo = get_algorithm(algorithms[0])
    server = ServerType(
        gpu_capacity=args.capacity, rate=args.rate, billing_quantum=args.quantum
    )
    if observed:
        return _dispatch_observed(args, trace, algo, server)
    if migrating:
        return _dispatch_migrating(args, trace, algo, server)
    report = dispatch_trace(trace, algo, server_type=server)
    for key, value in report.summary_row().items():
        print(f"{key:14s} {value}")
    return 0


def _dispatch_compare(args: argparse.Namespace, algorithms: list[str]) -> int:
    """Dispatch one trace under several algorithms, optionally sharded."""
    from .analysis.tables import render_table
    from .parallel import progress_printer, run_tasks

    tasks = [
        {
            "trace": str(args.trace),
            "algorithm": name,
            "capacity": args.capacity,
            "rate": args.rate,
            "quantum": args.quantum,
        }
        for name in algorithms
    ]
    if args.workers > 1:
        rows = run_tasks(
            _dispatch_task,
            tasks,
            workers=args.workers,
            on_progress=progress_printer(sys.stderr, label="dispatch"),
        )
    else:
        rows = [_dispatch_task(task) for task in tasks]
    headers = list(rows[0])
    print(
        render_table(
            headers,
            [[row.get(h) for h in headers] for row in rows],
            title=f"dispatch comparison: {args.trace.name}",
        )
    )
    return 0


def _dispatch_migrating(args: argparse.Namespace, trace, algo, server) -> int:
    """Migration-bounded streamed dispatch: sessions may be consolidated
    onto fewer servers within the ``--migration-factor`` budget, each move
    settled exactly by the engine."""
    from .cloud import dispatch_stream
    from .renting import BoundedRepacker

    repacker = BoundedRepacker(factor=args.migration_factor)
    items = iter(sorted(trace.items, key=lambda it: it.arrival))
    report = dispatch_stream(items, algo, server_type=server, repacker=repacker)
    print(f"{'algorithm':14s} {report.algorithm_name}")
    print(f"{'beta':14s} {args.migration_factor}")
    print(f"{'sessions':14s} {report.num_sessions}")
    print(f"{'servers':14s} {report.num_servers_rented}")
    print(f"{'peak':14s} {report.peak_concurrent_servers}")
    print(f"{'cost(cont)':14s} {float(report.continuous_cost)}")
    print(f"{'cost(billed)':14s} {float(report.billed_cost)}")
    print(f"{'migrations':14s} {repacker.migrations_done}")
    print(f"{'size moved':14s} {float(repacker.size_moved)}")
    print(f"{'emptied':14s} {repacker.bins_emptied}")
    return 0


def _dispatch_observed(args: argparse.Namespace, trace, algo, server) -> int:
    """Streamed dispatch with the repro.obs observability stack attached."""
    from .cloud import dispatch_stream
    from .obs import ObservationSession

    session = ObservationSession(
        algo,
        capacity=server.gpu_capacity,
        cost_rate=server.rate,
        trace=args.trace_out,
        profile=args.profile,
        workload={"trace_file": args.trace.name, "num_items": len(trace)},
        extra={"billing_quantum": server.billing_quantum},
    )
    extra_observers: tuple = ()
    live_server = live_obs = None
    uninstall = None
    if args.serve_metrics is not None:
        from .obs import (
            FlightObserver,
            FlightRecorder,
            Heartbeat,
            LiveExportObserver,
            LiveMetricsServer,
            install_signal_dump,
        )

        live_server = LiveMetricsServer(port=args.serve_metrics).start()
        print(f"live metrics on {live_server.url}/metrics", file=sys.stderr)
        heartbeat = Heartbeat(sys.stderr, total_items=len(trace), label="dispatch")
        live_obs = LiveExportObserver(
            session.registry, live_server, heartbeat=heartbeat
        )
        # A killed live run should still explain itself: keep a flight
        # ring and dump it as a post-mortem on SIGTERM.
        flight = FlightRecorder(
            capacity=256,
            path=args.metrics / "flight.jsonl" if args.metrics is not None else None,
        )
        uninstall = install_signal_dump(flight)
        extra_observers = (live_obs, FlightObserver(flight))
    try:
        # Streamed dispatch requires arrival order; trace files may be unsorted.
        items = iter(sorted(trace.items, key=lambda it: it.arrival))
        report = dispatch_stream(
            items,
            session.instrumented,
            server_type=server,
            observers=session.observers + extra_observers,
        )
        session.finish(report.summary)
        if live_obs is not None:
            live_obs.publish()  # final snapshot equals the artifact bytes
        print(f"{'algorithm':14s} {report.algorithm_name}")
        print(f"{'sessions':14s} {report.num_sessions}")
        print(f"{'servers':14s} {report.num_servers_rented}")
        print(f"{'peak':14s} {report.peak_concurrent_servers}")
        print(f"{'cost(cont)':14s} {float(report.continuous_cost)}")
        print(f"{'cost(billed)':14s} {float(report.billed_cost)}")
        if args.trace_out is not None:
            print(f"trace written to {args.trace_out} ({session.tracer.records_written} records)")
        if args.metrics is not None:
            written = session.write_artifacts(args.metrics)
            if live_server is not None:
                from .obs import scrape

                live_path = Path(args.metrics) / "metrics.live.prom"
                live_path.write_bytes(scrape(live_server.port))
                written["metrics_live_prom"] = live_path
            for name in sorted(written):
                print(f"{name} written to {written[name]}")
        if args.profile and session.profiler is not None:
            for phase, row in session.profiler.report().items():
                print(
                    f"phase {phase}: {int(row['count'])} timings, "
                    f"total {row['total_seconds']:.6g}s, mean {row['mean_seconds']:.3g}s"
                )
    finally:
        if uninstall is not None:
            uninstall()
        if live_server is not None:
            live_server.stop()
    return 0


def _cmd_verify_trace(args: argparse.Namespace) -> int:
    from .obs import TraceReplayError, verify_trace

    try:
        summary = verify_trace(args.trace)
    except (TraceReplayError, OSError, ValueError) as exc:
        print(f"trace verification FAILED: {exc}", file=sys.stderr)
        return 1
    print(
        f"trace OK: {summary.algorithm_name}, {summary.num_items} items, "
        f"{summary.num_bins_used} bins, total cost {float(summary.total_cost):.6g} "
        "(replay matches the recorded summary exactly)"
    )
    return 0


def _cmd_viz(args: argparse.Namespace) -> int:
    from .analysis.viz import render_load_sparkline, render_packing_timeline
    from .core.simulator import simulate

    trace = _load_trace(args.trace)
    result = simulate(trace.items, get_algorithm(args.algorithm), capacity=args.capacity)
    print(render_packing_timeline(result, width=args.width, max_bins=args.max_bins))
    print(render_load_sparkline(result, width=args.width))
    print(
        f"{result.algorithm_name}: {result.num_bins_used} bins, "
        f"cost {float(result.total_cost()):.6g}"
    )
    return 0


def _run_one(name: str, precision: int, collected: list) -> bool:
    result = get_experiment(name)()
    collected.append(result)
    print(result.render(precision=precision))
    print()
    return result.all_claims_hold


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience import ChaosCampaignConfig, run_campaign

    config = ChaosCampaignConfig(
        seed=args.seed,
        n_items=args.items,
        checkpoint_every=24,
        include_worker_kill=not args.no_worker_kill,
    )
    live_server = None
    on_progress = None
    if args.serve_metrics is not None:
        from .obs import LiveMetricsServer, MetricsRegistry

        registry = MetricsRegistry()
        scenarios_done = registry.counter(
            "dbp_chaos_scenarios_total", "Chaos scenarios completed"
        )
        live_server = LiveMetricsServer(port=args.serve_metrics).start()
        print(f"live metrics on {live_server.url}/metrics", file=sys.stderr)
        live_server.publish_registry(registry)

        def on_progress(completed: int, total: int, index: int) -> None:
            scenarios_done.inc()
            live_server.publish_registry(registry)
            print(f"chaos[{index}]: {completed}/{total}", file=sys.stderr)
            sys.stderr.flush()

    try:
        report = run_campaign(config, workers=args.workers, on_progress=on_progress)
    finally:
        if live_server is not None:
            live_server.stop()
    header = f"{'scenario':9s} {'kind':12s} {'trace':7s} {'param':9s} {'ok':4s} detail"
    print(header)
    print("-" * len(header))
    for row in report.rows:
        detail = (
            f"crashes={row['crashes']} checkpoints={row['checkpoints']} "
            f"detected={row['corruptions_detected']}/{row['corruptions_injected']}"
        )
        status = "PASS" if row["ok"] else "FAIL"
        print(
            f"{row['scenario']:9s} {row['kind']:12s} {row['trace']:7s} "
            f"{row['param']:9s} {status:4s} {detail}"
        )
    totals = report.totals
    print(
        f"\n{totals['scenarios']} scenarios, {totals['failed']} failed; "
        f"{totals['crashes_injected']} crashes injected, "
        f"{totals['corruptions_detected']}/{totals['corruptions_injected']} "
        "corruptions detected"
    )
    if args.out is not None:
        args.out.write_text(report.to_json())
        print(f"campaign report written to {args.out}")
    if not report.all_pass:
        print("chaos campaign FAILED: a resilience invariant was violated", file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in available_experiments():
            info = experiment_info(name)
            print(f"{name:18s} {info['display']:32s} {info['description']}")
        return 0
    if args.command == "algorithms":
        for name in available_algorithms():
            print(name)
        return 0
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "dispatch":
        return _cmd_dispatch(args)
    if args.command == "verify-trace":
        return _cmd_verify_trace(args)
    if args.command == "viz":
        return _cmd_viz(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "report":
        from .experiments.report import generate_report

        markdown, ok = generate_report(args.experiments or None, precision=args.precision)
        if args.out is not None:
            args.out.write_text(markdown)
            print(f"report written to {args.out}")
        else:
            print(markdown)
        return 0 if ok else 1
    # run
    names = available_experiments() if args.experiment == "all" else [args.experiment]
    ok = True
    collected: list = []
    if (args.workers > 1 and len(names) > 1) or args.serve_metrics is not None:
        from .experiments import run_experiments
        from .parallel import progress_printer

        live_server = None
        on_task_registry = None
        if args.serve_metrics is not None:
            from .obs import LiveMetricsServer, RegistryAggregate

            aggregate = RegistryAggregate()
            live_server = LiveMetricsServer(port=args.serve_metrics).start()
            print(f"live metrics on {live_server.url}/metrics", file=sys.stderr)

            def on_task_registry(index: int, state: dict) -> None:
                # fleet-wide merged registry, republished per finished task
                aggregate.add(state)
                live_server.publish(
                    aggregate.to_prometheus(), aggregate.to_json() + "\n"
                )

        try:
            collected = run_experiments(
                names,
                parallel=args.workers if args.workers > 1 else None,
                on_progress=progress_printer(sys.stderr, label="experiments"),
                on_task_registry=on_task_registry,
            )
        finally:
            if live_server is not None:
                live_server.stop()
        for result in collected:
            print(result.render(precision=args.precision))
            print()
            ok = result.all_claims_hold and ok
    else:
        for name in names:
            ok = _run_one(name, args.precision, collected) and ok
    if args.out is not None:
        from .experiments.io import results_to_json

        args.out.write_text(results_to_json(collected))
        print(f"results written to {args.out}")
    if args.strict and not ok:
        print("some paper claims FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
