"""repro — MinTotal Dynamic Bin Packing.

A production-quality reproduction of Li, Tang & Cai, *On Dynamic Bin
Packing for Resource Allocation in the Cloud* (SPAA 2014): the MinTotal DBP
model, the Any Fit / First Fit / Best Fit / Modified First Fit algorithms,
the paper's adversarial lower-bound constructions, OPT bracketing, the
Theorem 4/5 proof machinery as executable analysis, synthetic cloud-gaming
workloads, and a cloud dispatch substrate.

Quickstart
----------
>>> from repro import FirstFit, make_items, simulate
>>> items = make_items([(0, 4, 0.5), (1, 5, 0.4), (2, 3, 0.5)])
>>> result = simulate(items, FirstFit(), capacity=1.0)
>>> float(result.total_cost())
6.0
"""

from .core import (
    Bin,
    BinConfiguration,
    BinRecord,
    CheckpointError,
    ContinuousCost,
    CostModel,
    DuplicateItemIdError,
    Interval,
    InvalidIntervalError,
    InvalidItemSizeError,
    Item,
    OpenBinIndex,
    OpenBinView,
    CheckpointFormatError,
    CheckpointSchemaError,
    InvalidItemTypeError,
    OversizedItemError,
    PackingResult,
    QuantizedCost,
    ResourceDimensionError,
    Resources,
    SimulationError,
    SimulationObserver,
    Simulator,
    StreamCheckpoint,
    StreamSummary,
    TelemetryCollector,
    TraceStats,
    TraceValidationError,
    interval_ratio,
    make_items,
    parse_configuration,
    simulate,
    simulate_stream,
    size_fits,
    span,
    total_demand,
    trace_span,
    trace_stats,
    utilization,
    validate_items,
)
from .algorithms import (
    AnyFit,
    AnyFitAlgorithm,
    Arrival,
    BestFit,
    FirstFit,
    HarmonicFit,
    LastFit,
    BalancedInterleaveFit,
    MinWeightedRemainingFit,
    ModifiedFirstFit,
    NewBinPerItem,
    NextFit,
    PackingAlgorithm,
    RandomFit,
    WorstFit,
    available_algorithms,
    get_algorithm,
)
from .renting import BoundedRepacker, EqualDurationFit, Hybrid, MoveToFront

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model
    "Item",
    "make_items",
    "validate_items",
    "Resources",
    "size_fits",
    "Interval",
    "span",
    "Bin",
    "BinRecord",
    "BinConfiguration",
    "parse_configuration",
    "PackingResult",
    "Simulator",
    "simulate",
    "simulate_stream",
    "StreamSummary",
    "StreamCheckpoint",
    "CheckpointError",
    "OpenBinIndex",
    "OpenBinView",
    "SimulationError",
    "TraceValidationError",
    "CheckpointFormatError",
    "CheckpointSchemaError",
    "InvalidItemTypeError",
    "InvalidItemSizeError",
    "ResourceDimensionError",
    "InvalidIntervalError",
    "OversizedItemError",
    "DuplicateItemIdError",
    "SimulationObserver",
    "TelemetryCollector",
    "CostModel",
    "ContinuousCost",
    "QuantizedCost",
    "TraceStats",
    "trace_stats",
    "trace_span",
    "total_demand",
    "interval_ratio",
    "utilization",
    # algorithms
    "PackingAlgorithm",
    "AnyFitAlgorithm",
    "Arrival",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "LastFit",
    "RandomFit",
    "AnyFit",
    "NextFit",
    "NewBinPerItem",
    "HarmonicFit",
    "ModifiedFirstFit",
    "MinWeightedRemainingFit",
    "BalancedInterleaveFit",
    "get_algorithm",
    "available_algorithms",
    # renting / migration-bounded families
    "Hybrid",
    "MoveToFront",
    "EqualDurationFit",
    "BoundedRepacker",
]
