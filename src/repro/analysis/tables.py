"""Plain-text result tables for experiments and benchmarks.

Every experiment renders its rows through :func:`render_table`, so bench
output mirrors the row/series structure a paper table would have.
"""

from __future__ import annotations

import numbers
from fractions import Fraction
from typing import Any, Iterable, Sequence

__all__ = ["format_value", "render_table", "rows_to_csv"]


def format_value(value: Any, *, precision: int = 4) -> str:
    """Human formatting: floats to ``precision`` significant digits,
    Fractions shown exactly, everything else via ``str``."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{value} ({float(value):.{precision}g})"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    if isinstance(value, numbers.Real):
        return str(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an aligned plain-text table.

    >>> print(render_table(["algo", "cost"], [["first-fit", 6.0]]))
    algo       cost
    ---------  ----
    first-fit  6
    """
    cells = [[format_value(v, precision=precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Minimal CSV (no quoting needed for our numeric tables)."""
    out = [",".join(headers)]
    for row in rows:
        out.append(",".join(str(v) for v in row))
    return "\n".join(out)
