"""Plain-text visualisation of packings.

Renders a packing as an ASCII timeline — one row per bin, one column per
time bucket, glyph darkness by bin level — plus a load sparkline.  Used by
the examples and handy when debugging adversarial constructions:

    bin  0 |▓▓▓▓▓▓▓▓▓▓▓▓░░░░░░░░░░░░░░░░|
    bin  1 |▓▓▓▓▓▓░░░░░░                |
    load   |▇▇▇▇▅▅▃▃▂▂▁▁                |
"""

from __future__ import annotations

from ..core.result import PackingResult

__all__ = ["render_packing_timeline", "render_load_sparkline"]

#: Level glyphs from empty to full.
_LEVEL_GLYPHS = " ·░▒▓█"
_SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"


def _bucket_edges(start: float, end: float, width: int) -> list[float]:
    step = (end - start) / width
    return [start + i * step for i in range(width + 1)]


def _bin_level_at(result: PackingResult, bin_index: int, t: float) -> float:
    return float(
        sum(
            it.size
            for it in result.items_in_bin(bin_index)
            if it.arrival <= t < it.departure
        )
    )


def render_packing_timeline(
    result: PackingResult,
    *,
    width: int = 60,
    max_bins: int = 20,
) -> str:
    """Render bins × time with level shading.

    Each cell samples the bin's level at the bucket midpoint; a cell is
    blank when the bin is not open there.  At most ``max_bins`` rows are
    drawn (a trailing summary line reports the rest).
    """
    if width < 4:
        raise ValueError(f"width must be at least 4, got {width}")
    if not result.bins:
        return "(empty packing)"
    start = float(min(b.opened_at for b in result.bins))
    end = float(max(b.closed_at for b in result.bins))
    if end <= start:
        return "(degenerate packing period)"
    edges = _bucket_edges(start, end, width)
    lines = []
    shown = list(result.bins[:max_bins])
    for b in shown:
        cap = float(result.bin_capacity(b))
        cells = []
        for i in range(width):
            mid = (edges[i] + edges[i + 1]) / 2
            if float(b.opened_at) <= mid < float(b.closed_at):
                level = _bin_level_at(result, b.index, mid) / cap
                idx = min(len(_LEVEL_GLYPHS) - 1, max(1, round(level * (len(_LEVEL_GLYPHS) - 1))))
                cells.append(_LEVEL_GLYPHS[idx])
            else:
                cells.append(" ")
        lines.append(f"bin {b.index:3d} |{''.join(cells)}|")
    if len(result.bins) > max_bins:
        lines.append(f"... and {len(result.bins) - max_bins} more bins")
    lines.append(
        f"t in [{start:g}, {end:g}], cell ≈ {(end - start) / width:.3g} time units; "
        f"shade = bin level / W"
    )
    return "\n".join(lines)


def render_load_sparkline(
    result: PackingResult,
    *,
    width: int = 60,
) -> str:
    """One-line sparkline of the total active load over the packing period."""
    from ..opt.load import load_profile

    items = result.items
    if not items:
        return "(no items)"
    times, loads = load_profile(items)
    start, end = float(times[0]), float(times[-1])
    if end <= start:
        return "(degenerate packing period)"
    peak = max(float(x) for x in loads) or 1.0
    edges = _bucket_edges(start, end, width)
    cells = []
    idx = 0
    for i in range(width):
        mid = (edges[i] + edges[i + 1]) / 2
        while idx + 1 < len(times) and float(times[idx + 1]) <= mid:
            idx += 1
        frac = float(loads[idx]) / peak
        g = min(len(_SPARK_GLYPHS) - 1, max(0, round(frac * (len(_SPARK_GLYPHS) - 1))))
        cells.append(_SPARK_GLYPHS[g])
    return f"load    |{''.join(cells)}| peak {peak:g}"
