"""The Theorem 4/5 proof machinery of Figures 4-8, executable.

The paper's First Fit analysis decomposes every bin's usage period and
builds combinatorial structure over the pieces:

* **Figure 4** — each usage period ``I_i`` splits at
  ``E_i = max{I_j^+ : j < i}`` into an overlapped part ``I_i^L`` and a
  residual part ``I_i^R``; the ``I_i^R`` are disjoint and tile the span
  (equation (5)).
* **Figure 5** — every ``I_i^L`` longer than ``(μ+2)Δ`` is split into
  sub-periods ``I_{i,j}`` of length exactly ``(μ+2)Δ`` (counted from the
  right), with a first-piece merge rule; Features (f.1)-(f.3).
* **Figure 6** — each sub-period has a *reference point* ``t_{i,j}`` (the
  earliest new item packed into ``b_i`` during it; Features (f.4)-(f.5))
  and a *reference bin* ``b†(I_{i,j})`` (the last-opened earlier bin still
  open at ``t_{i,j}``), giving a *reference period*
  ``[t_{i,j}−Δ, t_{i,j}+Δ]`` on the reference bin.
* **Table 2 / Lemmas 1-3** — reference periods can only intersect in
  Case V (two first sub-periods of different bins), and then only in
  chains of length ≤ 2.
* **Figure 7 / Lemma 4** — intersecting pairs are matched into
  *joint-periods*; joint and single periods have non-intersecting
  reference periods.
* **Figure 8 / Lemma 5** — *auxiliary periods* (same window on ``b_i``
  itself) never intersect; inequality (14) charges ``W·Δ`` of resource
  demand to each sub-period, yielding inequality (15) and Theorem 5.

:func:`decompose_first_fit` computes all of it for a finished First Fit
packing, and :func:`verify_decomposition` checks **every** feature, lemma
and inequality, returning a :class:`DecompositionReport`.  The test suite
runs this over hypothesis-generated traces: any counterexample to the
paper's proof would surface as a failing property.
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass, field
from typing import Sequence

from ..core.interval import Interval
from ..core.item import Item
from ..core.metrics import (
    max_interval_length,
    min_interval_length,
    total_demand,
    trace_span,
)
from ..core.result import BinRecord, PackingResult

__all__ = [
    "SubPeriod",
    "FFDecomposition",
    "DecompositionError",
    "DecompositionReport",
    "decompose_first_fit",
    "verify_decomposition",
    "CASE_I",
    "CASE_II",
    "CASE_III",
    "CASE_IV",
    "CASE_V",
    "classify_case",
]


class DecompositionError(RuntimeError):
    """A structural claim of the paper's proof failed to hold (a bug —
    either in this implementation or, far less likely, in the paper)."""


# Table 2 case labels.
CASE_I = "I"
CASE_II = "II"
CASE_III = "III"
CASE_IV = "IV"
CASE_V = "V"


@dataclass(frozen=True)
class SubPeriod:
    """One ``I_{i,j}`` with its reference structure.

    ``bin_index`` is 0-based (the paper's ``b_{i}`` with ``i =
    bin_index+1``); ``j`` is 1-based as in the paper.
    """

    bin_index: int
    j: int
    interval: Interval
    ref_time: numbers.Real  # t_{i,j}
    ref_bin_index: int  # b†(I_{i,j}), 0-based

    @property
    def length(self) -> numbers.Real:
        return self.interval.length


def classify_case(p: SubPeriod, q: SubPeriod) -> str:
    """Table 2: classify an unordered pair of distinct sub-periods."""
    same_bin = p.bin_index == q.bin_index
    j1, j2 = p.j, q.j
    if same_bin:
        if j1 >= 2 and j2 >= 2:
            return CASE_I
        if (j1 == 1) != (j2 == 1):
            return CASE_II
        raise ValueError("two distinct first sub-periods of the same bin cannot exist")
    if j1 >= 2 and j2 >= 2:
        return CASE_III
    if (j1 == 1) != (j2 == 1):
        return CASE_IV
    return CASE_V


@dataclass
class FFDecomposition:
    """Everything Figures 4-8 define, computed for one FF packing."""

    result: PackingResult
    delta: numbers.Real  # Δ, the minimum item interval length
    mu: numbers.Real  # μ
    usage: list[Interval]  # I_i per bin
    closers: list[numbers.Real]  # E_i per bin
    left_parts: list[Interval | None]  # I_i^L (None when empty)
    right_parts: list[Interval | None]  # I_i^R (None when empty)
    subperiods: list[SubPeriod]  # all I_{i,j}, every one with references

    # ---------------------------------------------------------- basic sums

    @property
    def mu_delta(self) -> numbers.Real:
        return self.mu * self.delta

    def total_left_length(self) -> numbers.Real:
        """``Σ_i len(I_i^L)``."""
        total: numbers.Real = 0
        for iv in self.left_parts:
            if iv is not None:
                total = total + iv.length
        return total

    def total_right_length(self) -> numbers.Real:
        """``Σ_i len(I_i^R)`` — equals ``span(R)`` (equation (5))."""
        total: numbers.Real = 0
        for iv in self.right_parts:
            if iv is not None:
                total = total + iv.length
        return total

    def total_subperiod_length(self) -> numbers.Real:
        """``len(I^L)`` — equals ``Σ_i len(I_i^L)`` (equation (7))."""
        total: numbers.Real = 0
        for sp in self.subperiods:
            total = total + sp.length
        return total

    # ---------------------------------------------------- reference windows

    def window(self, sp: SubPeriod) -> Interval:
        """``[t_{i,j} − Δ, t_{i,j} + Δ]``."""
        return Interval(sp.ref_time - self.delta, sp.ref_time + self.delta)

    def reference_periods_intersect(self, p: SubPeriod, q: SubPeriod) -> bool:
        """Same reference bin and ``|t1 − t2| < 2Δ``."""
        if p.ref_bin_index != q.ref_bin_index:
            return False
        diff = p.ref_time - q.ref_time
        if diff < 0:
            diff = -diff
        return diff < 2 * self.delta

    def auxiliary_periods_intersect(self, p: SubPeriod, q: SubPeriod) -> bool:
        """Same own bin and ``|t1 − t2| < 2Δ`` (Lemma 5 says: never)."""
        if p.bin_index != q.bin_index:
            return False
        diff = p.ref_time - q.ref_time
        if diff < 0:
            diff = -diff
        return diff < 2 * self.delta

    # -------------------------------------------------- intersecting split

    def partition_subperiods(self) -> tuple[list[SubPeriod], list[SubPeriod]]:
        """Split into ``(I_I^L, I_U^L)``: with/without an intersecting peer."""
        intersecting: list[SubPeriod] = []
        lonely: list[SubPeriod] = []
        sps = self.subperiods
        flagged = [False] * len(sps)
        for a in range(len(sps)):
            for b in range(a + 1, len(sps)):
                if self.reference_periods_intersect(sps[a], sps[b]):
                    flagged[a] = True
                    flagged[b] = True
        for sp, f in zip(sps, flagged):
            (intersecting if f else lonely).append(sp)
        return intersecting, lonely

    def build_pairs(
        self,
    ) -> tuple[list[tuple[SubPeriod, SubPeriod]], list[SubPeriod], list[SubPeriod]]:
        """The Figure 7 pairing: ``(joint_periods, single_periods, I_U^L)``.

        Processes periods of ``I_I^L`` in ascending bin order; an unpaired
        period with a back-intersect partner forms a joint-period with it.
        """
        intersecting, lonely = self.partition_subperiods()
        intersecting.sort(key=lambda sp: sp.bin_index)
        paired: set[int] = set()
        joints: list[tuple[SubPeriod, SubPeriod]] = []
        singles: list[SubPeriod] = []
        for a, sp in enumerate(intersecting):
            if a in paired:
                continue
            partner = None
            for b in range(a + 1, len(intersecting)):
                if b in paired:
                    continue
                if self.reference_periods_intersect(sp, intersecting[b]):
                    partner = b
                    break
            if partner is None:
                singles.append(sp)
            else:
                paired.add(a)
                paired.add(partner)
                joints.append((sp, intersecting[partner]))
        return joints, singles, lonely

    # ------------------------------------------------------ resource demand

    def _bin_items_at(self, bin_index: int, t: numbers.Real) -> list[Item]:
        """Items resident in bin ``bin_index`` at time ``t`` (arrivals at t
        included, departures at t excluded — the simulator's convention)."""
        return [
            it
            for it in self.result.items_in_bin(bin_index)
            if it.arrival <= t < it.departure
        ]

    def window_demand(self, bin_index: int, t: numbers.Real) -> numbers.Real:
        """``u(p)`` for the window ``[t−Δ, t+Δ]`` on the given bin.

        Sum over the items resident at ``t`` of size × (overlap of their
        interval with the window) — exactly the quantity inequality (8)
        and (14) lower-bound.
        """
        window = Interval(t - self.delta, t + self.delta)
        total: numbers.Real = 0
        for it in self._bin_items_at(bin_index, t):
            overlap = window.intersection(Interval(it.arrival, it.departure))
            if overlap is not None:
                total = total + it.size * overlap.length
        return total


def _first_fit_only(result: PackingResult) -> None:
    if result.algorithm_name not in ("first-fit",):
        raise ValueError(
            "the Figure 4-8 decomposition is specific to First Fit packings; "
            f"got a result from {result.algorithm_name!r}"
        )


def decompose_first_fit(result: PackingResult) -> FFDecomposition:
    """Compute the full proof decomposition of a finished FF packing."""
    _first_fit_only(result)
    if not result.bins:
        raise ValueError("cannot decompose an empty packing")
    items = result.items
    delta = min_interval_length(items)
    mu = max_interval_length(items) / delta
    bins: Sequence[BinRecord] = result.bins
    usage = [b.usage_interval() for b in bins]
    packing_start = min(it.arrival for it in items)

    closers: list[numbers.Real] = []
    left_parts: list[Interval | None] = []
    right_parts: list[Interval | None] = []
    latest_close: numbers.Real = packing_start
    for i, iv in enumerate(usage):
        e_i = packing_start if i == 0 else latest_close
        closers.append(e_i)
        if e_i <= iv.left:
            left_parts.append(None)
            right_parts.append(iv)
        elif e_i >= iv.right:
            left_parts.append(iv)
            right_parts.append(None)
        else:
            left_parts.append(Interval(iv.left, e_i))
            right_parts.append(Interval(e_i, iv.right))
        if iv.right > latest_close:
            latest_close = iv.right

    block = (mu + 2) * delta  # (μ+2)Δ: the split width
    subperiods: list[SubPeriod] = []
    for i, part in enumerate(left_parts):
        if part is None:
            continue
        length = part.length
        if length <= block:
            pieces = [part]
        else:
            num = math.ceil(length / block)
            # Splitter points at right − k·(μ+2)Δ, k = 1..num−1.
            cuts = [part.right - k * block for k in range(num - 1, 0, -1)]
            bounds = [part.left, *cuts, part.right]
            pieces = [Interval(bounds[a], bounds[a + 1]) for a in range(len(bounds) - 1)]
            if pieces[0].length < 2 * delta and len(pieces) > 1:
                pieces = [Interval(pieces[0].left, pieces[1].right), *pieces[2:]]
        for j, piece in enumerate(pieces, start=1):
            t = _reference_point(result, i, piece)
            ref_bin = _reference_bin(usage, i, t)
            subperiods.append(
                SubPeriod(bin_index=i, j=j, interval=piece, ref_time=t, ref_bin_index=ref_bin)
            )

    return FFDecomposition(
        result=result,
        delta=delta,
        mu=mu,
        usage=usage,
        closers=closers,
        left_parts=left_parts,
        right_parts=right_parts,
        subperiods=subperiods,
    )


def _reference_point(
    result: PackingResult,
    bin_index: int,
    piece: Interval,
) -> numbers.Real:
    """``t_{i,j}``: earliest assignment into the bin within the sub-period.

    Sub-period membership is ``[left, right)`` — the right endpoint of
    ``I_i^L`` is the start of ``I_i^R`` (or the bin's close) and belongs to
    neither sub-period, matching the paper's partition.
    """
    record = result.bins[bin_index]
    candidates = [
        t for t, _ in record.assignments if piece.left <= t < piece.right
    ]
    if not candidates:
        raise DecompositionError(
            f"no new item packed into bin {bin_index} during sub-period "
            f"[{piece.left}, {piece.right}) — contradicts the paper's Section 4.3 claim"
        )
    return min(candidates)


def _reference_bin(usage: Sequence[Interval], bin_index: int, t: numbers.Real) -> int:
    """``b†``: the last-opened bin ``k < i`` with ``t < I_k^+``."""
    for k in range(bin_index - 1, -1, -1):
        if t < usage[k].right:
            return k
    raise DecompositionError(
        f"reference bin of bin {bin_index} at t={t} does not exist — "
        "t should have been in I_i^R"
    )


# ---------------------------------------------------------------------------
# Verification


@dataclass
class DecompositionReport:
    """Outcome of verifying every paper claim on one decomposition.

    ``violations`` is empty iff every feature, lemma and inequality holds.
    """

    num_bins: int
    num_subperiods: int
    violations: list[str] = field(default_factory=list)
    #: Count of sub-period pairs per Table 2 case.
    case_counts: dict[str, int] = field(default_factory=dict)
    num_joint: int = 0
    num_single: int = 0
    num_lonely: int = 0

    @property
    def all_ok(self) -> bool:
        return not self.violations

    def raise_on_violation(self) -> None:
        if self.violations:
            raise DecompositionError("; ".join(self.violations))


def verify_decomposition(
    dec: FFDecomposition,
    *,
    small_k: numbers.Real | None = None,
    tolerance: float = 1e-9,
) -> DecompositionReport:
    """Check every claim of Section 4.3 against a concrete decomposition.

    Parameters
    ----------
    small_k:
        When the trace satisfies the small-items premise (all sizes
        < W/k), pass ``k`` to additionally check inequality (8)
        (``u(p†) ≥ (W − W/k)Δ`` per sub-period) and inequality (11).
    """
    report = DecompositionReport(
        num_bins=len(dec.usage), num_subperiods=len(dec.subperiods)
    )
    v = report.violations
    delta, mu = dec.delta, dec.mu
    block = (mu + 2) * delta
    cap = dec.result.capacity

    def close(a: numbers.Real, b: numbers.Real) -> bool:
        return abs(a - b) <= tolerance * max(1, abs(a), abs(b))

    def ge(a: numbers.Real, b: numbers.Real) -> bool:
        return a >= b - tolerance * max(1, abs(a), abs(b))

    def le(a: numbers.Real, b: numbers.Real) -> bool:
        return a <= b + tolerance * max(1, abs(a), abs(b))

    # --- Figure 4 / equation (5): I_i^R are disjoint and tile the span.
    right = [iv for iv in dec.right_parts if iv is not None]
    for a in range(len(right)):
        for b in range(a + 1, len(right)):
            if right[a].overlaps(right[b]):
                v.append(f"I^R parts overlap: {right[a]} vs {right[b]}")
    span = trace_span(dec.result.items)
    if not close(dec.total_right_length(), span):
        v.append(
            f"equation (5) fails: Σ len(I_i^R) = {dec.total_right_length()} != span = {span}"
        )

    # --- equations (4)/(6): lengths add up to the FF cost.
    ff_cost = dec.result.total_cost() / dec.result.cost_rate
    lhs = dec.total_left_length() + dec.total_right_length()
    if not close(lhs, ff_cost):
        v.append(f"equation (4) fails: Σ(len I^L + len I^R) = {lhs} != Σ len(I_i) = {ff_cost}")

    # --- equation (7): sub-periods tile the I^L parts.
    if not close(dec.total_subperiod_length(), dec.total_left_length()):
        v.append(
            f"equation (7) fails: len(I^L) = {dec.total_subperiod_length()} != "
            f"Σ len(I_i^L) = {dec.total_left_length()}"
        )

    # --- Features (f.1)-(f.3).
    by_bin: dict[int, list[SubPeriod]] = {}
    for sp in dec.subperiods:
        by_bin.setdefault(sp.bin_index, []).append(sp)
    for i, sps in by_bin.items():
        sps.sort(key=lambda s: s.j)
        for sp in sps:
            if not le(sp.length, (mu + 4) * delta):
                v.append(f"(f.1) fails for I_{{{i},{sp.j}}}: len {sp.length} > (μ+4)Δ")
            if sp.j >= 2 and not close(sp.length, block):
                v.append(f"(f.2) fails for I_{{{i},{sp.j}}}: len {sp.length} != (μ+2)Δ")
        if len(sps) >= 2 and not ge(sps[0].length, 2 * delta):
            v.append(f"(f.3) fails for bin {i}: first sub-period len {sps[0].length} < 2Δ")

    # --- Features (f.4)-(f.5) and the reference-bin / First Fit property.
    for sp in dec.subperiods:
        if sp.j == 1:
            if sp.ref_time != sp.interval.left:
                v.append(
                    f"(f.4) fails for I_{{{sp.bin_index},1}}: t = {sp.ref_time} != "
                    f"I^- = {sp.interval.left}"
                )
        if not (sp.interval.left <= sp.ref_time and le(sp.ref_time, sp.interval.left + mu * delta)):
            v.append(
                f"(f.5) fails for I_{{{sp.bin_index},{sp.j}}}: t = {sp.ref_time} not in "
                f"[I^-, I^- + μΔ]"
            )
        # Reference bin is open at t and, by First Fit, must have been too
        # full for the item placed at t.
        ref_usage = dec.usage[sp.ref_bin_index]
        if not (ref_usage.left <= sp.ref_time < ref_usage.right):
            v.append(
                f"reference bin {sp.ref_bin_index} not open at t = {sp.ref_time} "
                f"for I_{{{sp.bin_index},{sp.j}}}"
            )
        placed = [
            it
            for it in dec.result.items_in_bin(sp.bin_index)
            if it.arrival == sp.ref_time
        ]
        if placed:
            new_size = min(it.size for it in placed)
            ref_level = sum(it.size for it in dec._bin_items_at(sp.ref_bin_index, sp.ref_time))
            if not ge(ref_level + new_size, cap):
                v.append(
                    f"First Fit property fails at t = {sp.ref_time}: reference bin "
                    f"{sp.ref_bin_index} level {ref_level} + new item {new_size} < W"
                )

    # --- Table 2 / Lemma 1: intersections only in Case V.
    sps = dec.subperiods
    for a in range(len(sps)):
        for b in range(a + 1, len(sps)):
            case = classify_case(sps[a], sps[b])
            report.case_counts[case] = report.case_counts.get(case, 0) + 1
            if case != CASE_V and dec.reference_periods_intersect(sps[a], sps[b]):
                v.append(
                    f"Lemma 1 fails: Case {case} pair "
                    f"I_{{{sps[a].bin_index},{sps[a].j}}} / I_{{{sps[b].bin_index},{sps[b].j}}} "
                    "has intersecting reference periods"
                )

    # --- Lemma 2: a Case-V front period of an intersecting pair is short.
    for a in range(len(sps)):
        for b in range(a + 1, len(sps)):
            p, q = sps[a], sps[b]
            if p.j == 1 and q.j == 1 and p.bin_index != q.bin_index:
                front = p if p.bin_index < q.bin_index else q
                if dec.reference_periods_intersect(p, q) and not front.length < 2 * delta + tolerance:
                    v.append(
                        f"Lemma 2 fails: front period of intersecting pair has length "
                        f"{front.length} ≥ 2Δ"
                    )

    # --- Lemma 3: at most one front- and one back-intersect per period.
    for sp in sps:
        if sp.j != 1:
            continue
        backs = [
            q
            for q in sps
            if q is not sp and q.bin_index > sp.bin_index and dec.reference_periods_intersect(sp, q)
        ]
        fronts = [
            q
            for q in sps
            if q is not sp and q.bin_index < sp.bin_index and dec.reference_periods_intersect(sp, q)
        ]
        if len(backs) > 1:
            v.append(f"Lemma 3 fails: I_{{{sp.bin_index},1}} has {len(backs)} back-intersects")
        if len(fronts) > 1:
            v.append(f"Lemma 3 fails: I_{{{sp.bin_index},1}} has {len(fronts)} front-intersects")

    # --- Lemma 4 via the pairing, and the (μ+6)Δ length bound per unit.
    joints, singles, lonely = dec.build_pairs()
    report.num_joint = len(joints)
    report.num_single = len(singles)
    report.num_lonely = len(lonely)
    units: list[tuple[SubPeriod, ...]] = [tuple(j) for j in joints]
    units += [(s,) for s in singles] + [(s,) for s in lonely]
    for a in range(len(units)):
        for b in range(a + 1, len(units)):
            pa, pb = units[a][0], units[b][0]
            if dec.reference_periods_intersect(pa, pb):
                v.append(
                    "Lemma 4 fails: reference periods of two distinct joint/single "
                    f"units intersect (bins {pa.bin_index} and {pb.bin_index})"
                )
    for unit in units:
        total_len: numbers.Real = 0
        for sp in unit:
            total_len = total_len + sp.length
        if not le(total_len, (mu + 6) * delta):
            v.append(
                f"unit length bound fails: joint/single unit of bins "
                f"{[sp.bin_index for sp in unit]} has total length {total_len} > (μ+6)Δ"
            )

    # --- Lemma 5: auxiliary periods never intersect.
    for a in range(len(sps)):
        for b in range(a + 1, len(sps)):
            if dec.auxiliary_periods_intersect(sps[a], sps[b]):
                v.append(
                    f"Lemma 5 fails: auxiliary periods of "
                    f"I_{{{sps[a].bin_index},{sps[a].j}}} and "
                    f"I_{{{sps[b].bin_index},{sps[b].j}}} intersect"
                )

    # --- Inequalities (8), (14), (15) and the cost bound (10)/(13).
    num_units = len(units)
    u_total = total_demand(dec.result.items)
    if small_k is not None:
        for unit in units:
            anchor = unit[0]
            demand = dec.window_demand(anchor.ref_bin_index, anchor.ref_time)
            if not ge(demand, (cap - cap / small_k) * delta):
                v.append(
                    f"inequality (8) fails: u(p†) = {demand} < (W − W/k)Δ "
                    f"for unit anchored at bin {anchor.bin_index}"
                )
        if not ge(u_total, num_units * (cap - cap / small_k) * delta):
            v.append(
                f"inequality (11) fails: u(R) = {u_total} < units × (W − W/k)Δ"
            )
    for unit in units:
        anchor = unit[0]
        ref = dec.window_demand(anchor.ref_bin_index, anchor.ref_time)
        aux = dec.window_demand(anchor.bin_index, anchor.ref_time)
        if not ge(ref + aux, cap * delta):
            v.append(
                f"inequality (14) fails: u(p†) + u(p‡) = {ref + aux} < WΔ for "
                f"unit anchored at bin {anchor.bin_index}, t = {anchor.ref_time}"
            )
    if not ge(2 * u_total, num_units * cap * delta):
        v.append(f"inequality (15) fails: u(R) = {u_total} < ½·units·WΔ")
    ff_total = dec.result.total_cost()
    c = dec.result.cost_rate
    bound_13 = c * num_units * (mu + 6) * delta + c * trace_span(dec.result.items)
    if not le(ff_total, bound_13):
        v.append(
            f"cost bound (10)/(13) fails: FF_total = {ff_total} > "
            f"C·units·(μ+6)Δ + C·span = {bound_13}"
        )
    return report
