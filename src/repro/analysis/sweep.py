"""Parameter sweeps: the grid-runner behind the experiment tables."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = ["grid", "run_sweep", "SweepResult"]


def grid(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named parameter axes, as dicts.

    >>> grid(k=[2, 4], mu=[1, 10])
    [{'k': 2, 'mu': 1}, {'k': 2, 'mu': 10}, {'k': 4, 'mu': 1}, {'k': 4, 'mu': 10}]
    """
    names = list(axes)
    out = []
    for combo in itertools.product(*(list(axes[n]) for n in names)):
        out.append(dict(zip(names, combo)))
    return out


@dataclass
class SweepResult:
    """Rows produced by a sweep, with helpers for tabulation."""

    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add(self, row: Mapping[str, Any]) -> None:
        self.rows.append([row.get(h) for h in self.headers])

    def column(self, name: str) -> list[Any]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def to_table(self, *, title: str | None = None, precision: int = 4) -> str:
        from .tables import render_table

        return render_table(self.headers, self.rows, title=title, precision=precision)


def run_sweep(
    fn: Callable[..., Mapping[str, Any]],
    points: Sequence[Mapping[str, Any]],
    *,
    headers: Sequence[str] | None = None,
) -> SweepResult:
    """Call ``fn(**point)`` for each grid point; collect the returned rows.

    ``fn`` returns a mapping of column name → value.  ``headers`` defaults
    to the keys of the first returned row (insertion order preserved).
    """
    if not points:
        raise ValueError("empty sweep")
    result: SweepResult | None = None
    for point in points:
        row = fn(**point)
        if result is None:
            result = SweepResult(headers=list(headers) if headers else list(row))
        result.add(row)
    assert result is not None
    return result
