"""Parameter sweeps: the grid-runner behind the experiment tables.

A sweep calls a row-producing function once per grid point.  With
``workers=N`` the points are sharded across a process pool
(:func:`repro.parallel.run_tasks`) under the package's determinism
contract: rows land in grid order whatever the completion order, and any
per-point seeds are derived from ``root_seed`` plus the point's canonical
key — so the parallel :class:`SweepResult` is identical to the serial one
at every worker count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.validation import EmptySweepError

__all__ = ["grid", "run_sweep", "SweepResult", "seeded_points"]


def grid(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named parameter axes, as dicts.

    >>> grid(k=[2, 4], mu=[1, 10])
    [{'k': 2, 'mu': 1}, {'k': 2, 'mu': 10}, {'k': 4, 'mu': 1}, {'k': 4, 'mu': 10}]
    """
    names = list(axes)
    out = []
    for combo in itertools.product(*(list(axes[n]) for n in names)):
        out.append(dict(zip(names, combo)))
    return out


@dataclass
class SweepResult:
    """Rows produced by a sweep, with helpers for tabulation."""

    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add(self, row: Mapping[str, Any]) -> None:
        self.rows.append([row.get(h) for h in self.headers])

    def column(self, name: str) -> list[Any]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def to_table(self, *, title: str | None = None, precision: int = 4) -> str:
        from .tables import render_table

        return render_table(self.headers, self.rows, title=title, precision=precision)


def seeded_points(
    points: Sequence[Mapping[str, Any]],
    root_seed: int,
    *,
    seed_param: str = "seed",
) -> list[dict[str, Any]]:
    """Attach a derived, order-independent seed to every grid point.

    Each point gains ``seed_param`` set to
    ``derive_seed(root_seed, point_key(point))`` — a pure function of the
    root seed and the point's parameters, so the same point receives the
    same seed in any process, on any worker, in any execution order.
    Points that already carry ``seed_param`` are rejected: mixing explicit
    and derived seeds in one sweep is almost certainly a bug.
    """
    from ..parallel.seeding import derive_seed, point_key

    out: list[dict[str, Any]] = []
    for point in points:
        if seed_param in point:
            raise ValueError(
                f"grid point {dict(point)!r} already has {seed_param!r}; "
                "either seed the grid explicitly or derive seeds, not both"
            )
        seeded = dict(point)
        seeded[seed_param] = derive_seed(root_seed, point_key(point))
        out.append(seeded)
    return out


def _call_with_kwargs(fn: Callable[..., Mapping[str, Any]], kwargs: dict[str, Any]):
    """Module-level shim so sharded sweep calls pickle cleanly."""
    return fn(**kwargs)


def run_sweep(
    fn: Callable[..., Mapping[str, Any]],
    points: Sequence[Mapping[str, Any]],
    *,
    headers: Sequence[str] | None = None,
    workers: int | None = None,
    root_seed: int | None = None,
    seed_param: str = "seed",
    timeout: float | None = None,
    retries: int = 1,
    chunk_size: int | None = None,
    metrics: Any = None,
    on_progress: Callable[[int, int, int], None] | None = None,
    on_task_registry: Callable[[int, dict], None] | None = None,
) -> SweepResult:
    """Call ``fn(**point)`` for each grid point; collect the returned rows.

    ``fn`` returns a mapping of column name → value.  ``headers`` defaults
    to the keys of the first returned row (insertion order preserved).

    ``root_seed`` (optional) derives a per-point ``seed_param`` argument
    via :func:`seeded_points`.  ``workers`` > 1 shards the points across a
    process pool — ``fn`` must then be picklable (module-level) — and is
    guaranteed to produce a :class:`SweepResult` identical to the serial
    run; ``timeout``/``retries``/``chunk_size``/``metrics``/``on_progress``/
    ``on_task_registry`` are forwarded to :func:`repro.parallel.run_tasks`.
    Worker failures surface as :class:`repro.parallel.ShardExecutionError`
    with the offending grid point attached to each
    :class:`~repro.parallel.ShardFailure`.

    The serial path honours the same telemetry contract as the sharded
    one: each point runs inside its own
    :func:`~repro.parallel.taskmetrics.task_registry_scope` and delivers
    its exported state through ``on_task_registry(index, state)``, so the
    merged registry is byte-identical at every worker count including 1.

    Raises :class:`repro.core.validation.EmptySweepError` (a
    :class:`ValueError`) on an empty grid, on both execution paths.
    """
    if not points:
        raise EmptySweepError("sweep")
    calls: list[dict[str, Any]] = (
        seeded_points(points, root_seed, seed_param=seed_param)
        if root_seed is not None
        else [dict(point) for point in points]
    )
    if workers is not None and workers > 1:
        from ..parallel.pool import run_tasks

        rows = run_tasks(
            partial(_call_with_kwargs, fn),
            calls,
            workers=workers,
            timeout=timeout,
            retries=retries,
            chunk_size=chunk_size,
            metrics=metrics,
            on_progress=on_progress,
            on_task_registry=on_task_registry,
        )
    else:
        from ..parallel.taskmetrics import export_if_used, task_registry_scope

        rows = []
        for index, kwargs in enumerate(calls):
            with task_registry_scope() as registry:
                rows.append(fn(**kwargs))
            state = export_if_used(registry)
            if state is not None and on_task_registry is not None:
                on_task_registry(index, state)
            if on_progress is not None:
                on_progress(index + 1, len(calls), index)
    result = SweepResult(headers=list(headers) if headers else list(rows[0]))
    for row in rows:
        result.add(row)
    return result
