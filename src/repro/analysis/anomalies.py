"""Online-packing anomalies: less work can cost more.

A classical pathology of online packing (and scheduling) algorithms:
*removing* an item from the trace can **increase** the algorithm's total
cost, because the removed item was steering later placements somewhere
cheap.  The optimum is trivially monotone (serving a subset never needs
more), so every anomaly is a pure artifact of online decision-making — a
vivid, concrete form of the suboptimality the paper's competitive analysis
bounds.

:func:`find_removal_anomalies` searches a trace for such items; the
``anomalies`` experiment measures how common they are per algorithm.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Callable, Sequence

from ..algorithms.base import PackingAlgorithm
from ..core.item import Item
from ..core.simulator import simulate

__all__ = ["RemovalAnomaly", "find_removal_anomalies"]


@dataclass(frozen=True, slots=True)
class RemovalAnomaly:
    """Removing ``item_id`` raised the algorithm's cost."""

    item_id: str
    base_cost: numbers.Real
    reduced_trace_cost: numbers.Real

    @property
    def increase(self) -> numbers.Real:
        return self.reduced_trace_cost - self.base_cost

    @property
    def relative_increase(self) -> float:
        return float(self.increase / self.base_cost)


def find_removal_anomalies(
    items: Sequence[Item],
    algorithm_factory: Callable[[], PackingAlgorithm],
    *,
    capacity: numbers.Real = 1,
    tolerance: float = 1e-9,
    stop_after: int | None = None,
) -> list[RemovalAnomaly]:
    """All single-item removals that *increase* the algorithm's cost.

    ``algorithm_factory`` must build a fresh algorithm per run (stateful
    algorithms cannot be reused across simulations).  O(n) simulations of
    n−1 items each — keep traces moderate.  ``stop_after`` caps the number
    of anomalies collected (early exit for existence checks).
    """
    items = list(items)
    if len(items) < 2:
        return []
    base = simulate(items, algorithm_factory(), capacity=capacity).total_cost()
    anomalies: list[RemovalAnomaly] = []
    for i in range(len(items)):
        reduced = items[:i] + items[i + 1 :]
        cost = simulate(reduced, algorithm_factory(), capacity=capacity).total_cost()
        if cost > base + tolerance * max(1.0, float(base)):
            anomalies.append(
                RemovalAnomaly(
                    item_id=items[i].item_id,
                    base_cost=base,
                    reduced_trace_cost=cost,
                )
            )
            if stop_after is not None and len(anomalies) >= stop_after:
                break
    return anomalies
