"""The classic DBP objective (MaxBins) next to MinTotal.

The prior literature the paper generalises (Coffman, Garey & Johnson 1983;
Chan, Lam & Wong 2008 for unit-fraction items) minimises the **maximum
number of bins ever used**, not bin-time.  This module measures that
objective on our packings so experiments can show how the two objectives
rank algorithms differently:

* ``max_bins_lower_bound`` — ``max_t ⌈load(t)/W⌉``, the repacking bound;
* ``max_bins_exact`` — ``max_t OPT(R,t)`` via per-snapshot branch & bound;
* known literature context (checked empirically, not re-proved): FF is
  between 2.75- and 2.897-competitive for MaxBins; Any Fit is exactly
  3-competitive on unit-fraction items.
"""

from __future__ import annotations

import numbers
from typing import Sequence

from ..core.item import Item
from ..core.result import PackingResult
from ..opt.load import load_profile
from ..opt.lower_bounds import robust_ceil
from ..opt.snapshot import snapshot_profile

__all__ = [
    "max_bins_lower_bound",
    "max_bins_exact",
    "max_bins_ratio",
    "COFFMAN_FF_UPPER",
    "CHAN_UNIT_FRACTION_ANYFIT",
]

#: Coffman, Garey & Johnson (1983): FF's MaxBins competitive ratio ≤ 2.897.
COFFMAN_FF_UPPER = 2.897
#: Chan, Lam & Wong (2008): Any Fit is exactly 3-competitive for MaxBins on
#: unit-fraction items (sizes 1/w).
CHAN_UNIT_FRACTION_ANYFIT = 3.0


def max_bins_lower_bound(
    items: Sequence[Item], *, capacity: numbers.Real = 1, method: str = "load"
) -> int:
    """Lower bound on the classic-DBP optimum ``max_t OPT(R,t)``.

    ``method="load"``: ``max_t ⌈load(t)/W⌉``.  ``method="l2"``: the
    per-snapshot Martello-Toth L2 maximum — never weaker, stronger when
    items above W/2 coexist at the peak.
    """
    if method == "load":
        _, loads = load_profile(items)
        return max((robust_ceil(load / capacity) for load in loads), default=0)
    if method != "l2":
        raise ValueError(f"method must be 'load' or 'l2', got {method!r}")
    from ..opt.snapshot import l2_lower_bound
    from ..core.events import EventKind, compile_events

    active: dict[str, numbers.Real] = {}
    best = 0
    events = compile_events(items)
    i = 0
    while i < len(events):
        t = events[i].time
        while i < len(events) and events[i].time == t:
            ev = events[i]
            if ev.kind is EventKind.ARRIVAL:
                active[ev.item.item_id] = ev.item.size
            else:
                del active[ev.item.item_id]
            i += 1
        best = max(best, l2_lower_bound(list(active.values()), capacity))
    return best


def max_bins_exact(
    items: Sequence[Item], *, capacity: numbers.Real = 1, node_limit: int = 2_000_000
) -> int:
    """``max_t OPT(R,t)``: the classic-DBP offline optimum with repacking."""
    _, counts = snapshot_profile(items, capacity, method="exact", node_limit=node_limit)
    return max(counts, default=0)


def max_bins_ratio(
    result: PackingResult, *, exact: bool = False, node_limit: int = 2_000_000
) -> float:
    """The packing's MaxBins objective over the offline optimum.

    With ``exact=False`` the denominator is the load lower bound, making
    the ratio a conservative (over-)estimate.
    """
    if exact:
        denom = max_bins_exact(
            result.items, capacity=result.capacity, node_limit=node_limit
        )
    else:
        denom = max_bins_lower_bound(result.items, capacity=result.capacity)
    if denom == 0:
        raise ValueError("empty trace has no MaxBins ratio")
    return result.max_bins_used / denom
