"""Analysis: theorem formulas, proof machinery, ratio measurement, tables."""

from .anomalies import RemovalAnomaly, find_removal_anomalies
from .bounds import (
    BoundCheck,
    check_bound,
    mff_bound_known_mu,
    mff_bound_unknown_mu,
    mff_generic_bound,
    mff_optimal_k,
    theorem1_lower_bound_ratio,
    theorem3_bound,
    theorem4_bound,
    theorem5_bound,
)
from .ff_decomposition import (
    CASE_I,
    CASE_II,
    CASE_III,
    CASE_IV,
    CASE_V,
    DecompositionError,
    DecompositionReport,
    FFDecomposition,
    SubPeriod,
    classify_case,
    decompose_first_fit,
    verify_decomposition,
)
from .classic_dbp import (
    CHAN_UNIT_FRACTION_ANYFIT,
    COFFMAN_FF_UPPER,
    max_bins_exact,
    max_bins_lower_bound,
    max_bins_ratio,
)
from .ratio import RatioMeasurement, compare_algorithms, measure_ratio
from .stats import RunSummary, aggregate_by_key, paired_win_rate, summarize
from .sweep import SweepResult, grid, run_sweep
from .tables import format_value, render_table, rows_to_csv
from .viz import render_load_sparkline, render_packing_timeline
from .waste import BinWaste, WasteReport, waste_report

__all__ = [
    "theorem1_lower_bound_ratio",
    "theorem3_bound",
    "theorem4_bound",
    "theorem5_bound",
    "mff_bound_unknown_mu",
    "mff_bound_known_mu",
    "mff_optimal_k",
    "mff_generic_bound",
    "BoundCheck",
    "check_bound",
    "FFDecomposition",
    "SubPeriod",
    "DecompositionError",
    "DecompositionReport",
    "decompose_first_fit",
    "verify_decomposition",
    "classify_case",
    "CASE_I",
    "CASE_II",
    "CASE_III",
    "CASE_IV",
    "CASE_V",
    "RatioMeasurement",
    "measure_ratio",
    "compare_algorithms",
    "grid",
    "run_sweep",
    "SweepResult",
    "format_value",
    "render_table",
    "rows_to_csv",
    "max_bins_lower_bound",
    "max_bins_exact",
    "max_bins_ratio",
    "COFFMAN_FF_UPPER",
    "CHAN_UNIT_FRACTION_ANYFIT",
    "RunSummary",
    "summarize",
    "paired_win_rate",
    "aggregate_by_key",
    "render_packing_timeline",
    "render_load_sparkline",
    "BinWaste",
    "WasteReport",
    "waste_report",
    "RemovalAnomaly",
    "find_removal_anomalies",
]
