"""The paper's competitive-ratio formulas as code.

Each theorem's bound is a function of the max/min interval length ratio μ
(and the size-class parameter k where applicable), plus helpers asserting
that a measured packing respects a bound.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from fractions import Fraction

__all__ = [
    "theorem1_lower_bound_ratio",
    "theorem3_bound",
    "theorem4_bound",
    "theorem5_bound",
    "mff_bound_unknown_mu",
    "mff_bound_known_mu",
    "mff_optimal_k",
    "mff_generic_bound",
    "BoundCheck",
    "check_bound",
]


def theorem1_lower_bound_ratio(k: int, mu: numbers.Real) -> Fraction:
    """Theorem 1's achieved ratio ``kμ/(k+μ−1)`` (→ μ as k → ∞)."""
    return (Fraction(k) * Fraction(mu)) / (Fraction(k) + Fraction(mu) - 1)


def theorem3_bound(k: numbers.Real) -> numbers.Real:
    """Theorem 3: all sizes ≥ W/k ⇒ FF_total ≤ k·OPT_total."""
    if k <= 1:
        raise ValueError(f"Theorem 3 requires k > 1, got {k}")
    return k


def theorem4_bound(mu: numbers.Real, k: numbers.Real) -> numbers.Real:
    """Theorem 4: all sizes < W/k ⇒ FF ratio ≤ (k/(k−1))μ + 6k/(k−1) + 1."""
    if k <= 1:
        raise ValueError(f"Theorem 4 requires k > 1, got {k}")
    if mu < 1:
        raise ValueError(f"μ is a max/min ratio, must be ≥ 1; got {mu}")
    return (k / (k - 1)) * mu + 6 * k / (k - 1) + 1


def theorem5_bound(mu: numbers.Real) -> numbers.Real:
    """Theorem 5: general First Fit ratio ≤ 2μ + 13."""
    if mu < 1:
        raise ValueError(f"μ is a max/min ratio, must be ≥ 1; got {mu}")
    return 2 * mu + 13


def mff_bound_unknown_mu(mu: numbers.Real) -> numbers.Real:
    """Section 4.4, μ unknown (k = 8): MFF ratio ≤ (8/7)μ + 55/7."""
    if mu < 1:
        raise ValueError(f"μ is a max/min ratio, must be ≥ 1; got {mu}")
    if isinstance(mu, (int, Fraction)):
        return Fraction(8, 7) * mu + Fraction(55, 7)
    return (8 * mu + 55) / 7


def mff_bound_known_mu(mu: numbers.Real) -> numbers.Real:
    """Section 4.4, μ known (k = μ + 7): MFF ratio ≤ μ + 8."""
    if mu < 1:
        raise ValueError(f"μ is a max/min ratio, must be ≥ 1; got {mu}")
    return mu + 8


def mff_optimal_k(mu: numbers.Real) -> numbers.Real:
    """The k minimising max{k, (μ+6)/(1−1/k)}; the paper derives k = μ+7."""
    return mu + 7


def mff_generic_bound(mu: numbers.Real, k: numbers.Real) -> numbers.Real:
    """MFF's intermediate bound ``max{k, (μ+6)/(1−1/k)} + 1`` for any k > 1.

    From ``MFF_total ≤ max{k, (μ+6)/(1−1/k)}·C·u(R)/W + C·span(R)`` and the
    two OPT lower bounds.  Specialises to the two published bounds at
    k = 8 and k = μ+7.
    """
    if k <= 1:
        raise ValueError(f"MFF requires k > 1, got {k}")
    return max(k, (mu + 6) / (1 - 1 / k)) + 1


@dataclass(frozen=True, slots=True)
class BoundCheck:
    """Outcome of checking a measured ratio against a theorem bound."""

    measured_ratio: float
    bound: float
    theorem: str

    @property
    def holds(self) -> bool:
        # Allow a hair of float slack: the bound itself is proved exactly,
        # but measured costs/OPT may be float integrals.
        return self.measured_ratio <= self.bound * (1 + 1e-9)

    @property
    def slack(self) -> float:
        """How far below the bound the measurement sits (bound − measured)."""
        return self.bound - self.measured_ratio


def check_bound(
    measured_cost: numbers.Real,
    opt_lower_bound: numbers.Real,
    bound: numbers.Real,
    *,
    theorem: str,
) -> BoundCheck:
    """Check ``measured_cost / opt_lower_bound ≤ bound``.

    Using an OPT *lower* bound makes the measured ratio an upper estimate
    of the true competitive ratio, so a passing check is genuine evidence
    the theorem holds on this instance.
    """
    if opt_lower_bound <= 0:
        raise ValueError("OPT lower bound must be positive")
    return BoundCheck(
        measured_ratio=float(measured_cost / opt_lower_bound),
        bound=float(bound),
        theorem=theorem,
    )
