"""Empirical competitive-ratio measurement.

The true ratio ``A_total/OPT_total`` is bracketed because ``OPT_total`` is:
measured against the OPT *upper* bound it is a lower estimate, against the
OPT *lower* bound an upper estimate.  A theorem bound checked against
``ratio_upper`` is therefore checked conservatively.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Sequence

from ..core.item import Item
from ..core.result import PackingResult
from ..core.simulator import simulate
from ..algorithms.base import PackingAlgorithm
from ..opt.lower_bounds import OptBracket, opt_bracket
from ..opt.snapshot import opt_total_exact

__all__ = ["RatioMeasurement", "measure_ratio", "compare_algorithms"]


@dataclass(frozen=True)
class RatioMeasurement:
    """A packing cost against the OPT_total bracket."""

    algorithm_name: str
    cost: numbers.Real
    opt: OptBracket

    @property
    def ratio_upper(self) -> float:
        """Upper estimate of the competitive ratio (cost / OPT lower bound)."""
        return float(self.cost / self.opt.lower)

    @property
    def ratio_lower(self) -> float:
        """Lower estimate of the competitive ratio (cost / OPT upper bound)."""
        return float(self.cost / self.opt.upper)

    @property
    def ratio(self) -> float:
        """The exact ratio when the bracket is tight, else the upper estimate."""
        return self.ratio_upper


def measure_ratio(
    result: PackingResult,
    *,
    exact: bool = False,
    node_limit: int = 2_000_000,
) -> RatioMeasurement:
    """Measure a packing's cost against the OPT_total bracket.

    With ``exact=True``, replace both ends of the bracket by the exact
    per-snapshot optimum (branch and bound) — feasible for small traces.
    """
    items = result.items
    if exact:
        value = opt_total_exact(
            items,
            capacity=result.capacity,
            cost_rate=result.cost_rate,
            node_limit=node_limit,
        )
        bracket = OptBracket(demand_lb=value, span_lb=value, pointwise_lb=value, ffd_ub=value)
    else:
        bracket = opt_bracket(items, capacity=result.capacity, cost_rate=result.cost_rate)
    return RatioMeasurement(
        algorithm_name=result.algorithm_name,
        cost=result.total_cost(),
        opt=bracket,
    )


def compare_algorithms(
    items: Sequence[Item],
    algorithms: Sequence[PackingAlgorithm],
    *,
    capacity: numbers.Real = 1,
    cost_rate: numbers.Real = 1,
) -> list[RatioMeasurement]:
    """Pack one trace with several algorithms and measure each against OPT.

    The OPT bracket depends only on the trace, so it is computed once.
    """
    bracket = opt_bracket(items, capacity=capacity, cost_rate=cost_rate)
    out = []
    for algo in algorithms:
        result = simulate(items, algo, capacity=capacity, cost_rate=cost_rate)
        out.append(
            RatioMeasurement(
                algorithm_name=result.algorithm_name,
                cost=result.total_cost(),
                opt=bracket,
            )
        )
    return out
