"""Multi-seed aggregation for experiments.

Experiments that average over seeds report ``mean ± ci95``; this module
holds the (numpy-backed) summary machinery plus pairwise win-rate tables
used by the fleet comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["RunSummary", "summarize", "paired_win_rate", "aggregate_by_key"]


@dataclass(frozen=True, slots=True)
class RunSummary:
    """Mean/σ/CI of one metric over repeated runs."""

    n: int
    mean: float
    std: float
    ci95: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={self.n})"


def summarize(values: Iterable[float]) -> RunSummary:
    """Normal-approximation summary (sample std, 1.96·σ/√n half-width)."""
    xs = np.asarray(list(values), dtype=float)
    if xs.size == 0:
        raise ValueError("cannot summarise zero runs")
    std = float(xs.std(ddof=1)) if xs.size > 1 else 0.0
    return RunSummary(
        n=int(xs.size),
        mean=float(xs.mean()),
        std=std,
        ci95=1.96 * std / math.sqrt(xs.size) if xs.size > 1 else 0.0,
        minimum=float(xs.min()),
        maximum=float(xs.max()),
    )


def paired_win_rate(a: Sequence[float], b: Sequence[float]) -> float:
    """Fraction of paired runs where ``a`` is strictly cheaper than ``b``.

    Ties count half, so two identical series score 0.5 — 'no evidence
    either way' rather than 'a never wins'.
    """
    if len(a) != len(b) or not a:
        raise ValueError("need equal-length, non-empty paired series")
    wins = sum(1.0 if x < y else (0.5 if x == y else 0.0) for x, y in zip(a, b))
    return wins / len(a)


def aggregate_by_key(
    rows: Iterable[Mapping[str, object]],
    *,
    key: str,
    metric: str,
) -> dict[object, RunSummary]:
    """Group rows by ``row[key]`` and summarise ``row[metric]`` per group."""
    groups: dict[object, list[float]] = {}
    for row in rows:
        groups.setdefault(row[key], []).append(float(row[metric]))  # type: ignore[arg-type]
    return {k: summarize(v) for k, v in groups.items()}
