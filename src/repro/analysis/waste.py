"""Waste accounting: where does the rental money go?

A bin is paid for its whole usage period at full capacity; the *used*
fraction is the resource demand of its items.  This module decomposes a
packing's bill into used vs wasted capacity per bin — the operational
counterpart of the utilisation number, used by the cloud experiments to
explain *why* one policy beats another (Next Fit loses to FF almost
entirely through low-occupancy bins, not through extra spans).
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass

from ..core.result import PackingResult

__all__ = ["BinWaste", "WasteReport", "waste_report"]


@dataclass(frozen=True, slots=True)
class BinWaste:
    """Paid/used/wasted capacity-time of one bin."""

    bin_index: int
    paid: numbers.Real  #: W × usage length
    used: numbers.Real  #: Σ u(r) of items assigned here

    @property
    def wasted(self) -> numbers.Real:
        return self.paid - self.used

    @property
    def utilization(self) -> float:
        return float(self.used / self.paid) if self.paid else 1.0


@dataclass(frozen=True)
class WasteReport:
    """Waste decomposition of a whole packing."""

    bins: tuple[BinWaste, ...]
    total_paid: numbers.Real
    total_used: numbers.Real

    @property
    def total_wasted(self) -> numbers.Real:
        return self.total_paid - self.total_used

    @property
    def utilization(self) -> float:
        return float(self.total_used / self.total_paid) if self.total_paid else 1.0

    def worst_bins(self, n: int = 5) -> list[BinWaste]:
        """The n bins wasting the most capacity-time."""
        return sorted(self.bins, key=lambda b: b.wasted, reverse=True)[:n]

    def waste_concentration(self, top_fraction: float = 0.1) -> float:
        """Share of total waste carried by the worst ``top_fraction`` of bins.

        Near 1.0 means a few pathological bins (the Theorem 1/2 signature);
        near ``top_fraction`` means waste is spread evenly.
        """
        if not 0 < top_fraction <= 1:
            raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
        if self.total_wasted <= 0:
            return 0.0
        k = max(1, round(len(self.bins) * top_fraction))
        top = sum(float(b.wasted) for b in self.worst_bins(k))
        return top / float(self.total_wasted)


def waste_report(result: PackingResult) -> WasteReport:
    """Compute the waste decomposition of a finished packing."""
    bins = []
    total_paid: numbers.Real = 0
    total_used: numbers.Real = 0
    for rec in result.bins:
        paid = result.bin_capacity(rec) * rec.usage_length
        used: numbers.Real = 0
        for item in result.items_in_bin(rec.index):
            used = used + item.demand
        bins.append(BinWaste(bin_index=rec.index, paid=paid, used=used))
        total_paid = total_paid + paid
        total_used = total_used + used
    return WasteReport(bins=tuple(bins), total_paid=total_paid, total_used=total_used)
