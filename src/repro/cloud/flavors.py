"""Heterogeneous game-server fleets: multiple VM flavours.

The paper assumes identical bins; real clouds rent several instance sizes
whose prices are usually sub-linear in capacity (a 2× GPU server costs
less than 2× the small one).  This module extends the model:

* :class:`Flavor` — a rentable capacity/rate pair;
* :class:`FlavorAwareFirstFit` — First Fit over open servers of *any*
  flavour, opening (by default) the cheapest flavour that fits the item
  when nothing has room; the bin label records the flavour so
  :func:`fleet_bill` (built on the per-label pricing machinery) produces
  the rental bill;
* experiment E17 (``fleet-mix``) compares single-flavour against mixed
  fleets under sub-linear pricing.

The engine supports this through
:meth:`~repro.algorithms.base.PackingAlgorithm.new_bin_capacity` and
per-bin capacities in :class:`~repro.core.result.BinRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Sequence

from ..core.numeric import Num
from ..algorithms.base import Arrival, OPEN_NEW, PackingAlgorithm
from ..core.bin import Bin
from ..core.resources import (
    Size,
    elementwise_max,
    is_valid_capacity,
    scalarize_max,
    scalarize_sum,
    size_fits,
)
from ..core.result import PackingResult
from .multi_region import RegionBill, RegionPricing, price_by_region

__all__ = ["Flavor", "FlavorAwareFirstFit", "fleet_bill"]


@dataclass(frozen=True, slots=True)
class Flavor:
    """One rentable VM flavour (scalar or multi-resource capacity)."""

    name: str
    capacity: Size
    rate: Num  #: cost per open time unit

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("flavour needs a name")
        if not is_valid_capacity(self.capacity):
            raise ValueError(f"{self.name}: capacity must be positive, got {self.capacity}")
        if self.rate <= 0:
            raise ValueError(f"{self.name}: rate must be positive, got {self.rate}")

    @property
    def rate_per_capacity(self) -> float:
        # Vector flavours are charged per unit of total provisioned
        # resource, so "density" compares the bulk discount across shapes.
        return float(self.rate / scalarize_sum(self.capacity))


class FlavorAwareFirstFit(PackingAlgorithm):
    """First Fit across a mixed fleet.

    Placement: earliest-opened open server (of any flavour) with room.
    Opening: among flavours that fit the item, pick by ``open_policy``:

    * ``"cheapest"`` — lowest absolute rate (favours small flavours);
    * ``"best-density"`` — lowest rate per capacity (favours the bulk
      discount of big flavours);
    * ``"smallest"`` — smallest fitting capacity.
    """

    name = "flavor-first-fit"

    _POLICIES = ("cheapest", "best-density", "smallest")

    def __init__(self, flavors: Sequence[Flavor], open_policy: str = "cheapest") -> None:
        if not flavors:
            raise ValueError("need at least one flavour")
        names = [f.name for f in flavors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate flavour names: {names}")
        if open_policy not in self._POLICIES:
            raise ValueError(f"unknown open policy {open_policy!r}; options: {self._POLICIES}")
        self.flavors = tuple(flavors)
        self.open_policy = open_policy
        self._pending: Flavor | None = None

    @property
    def max_capacity(self) -> Size:
        """Elementwise envelope of the fleet's capacities."""
        return reduce(elementwise_max, (f.capacity for f in self.flavors))

    def _pick_flavor(self, item: Arrival) -> Flavor:
        fitting = [f for f in self.flavors if size_fits(item.size, f.capacity)]
        if not fitting:
            raise ValueError(
                f"item {item.item_id!r} of size {item.size} fits no flavour "
                f"(max capacity {self.max_capacity})"
            )
        # Vector capacities only partially order, so tiebreaks scalarise;
        # for scalar fleets the keys are the historical ones unchanged.
        if self.open_policy == "cheapest":
            return min(fitting, key=lambda f: (f.rate, scalarize_sum(f.capacity)))
        if self.open_policy == "best-density":
            return min(
                fitting, key=lambda f: (f.rate_per_capacity, scalarize_sum(f.capacity))
            )
        return min(
            fitting,
            key=lambda f: (scalarize_max(f.capacity), scalarize_sum(f.capacity), f.rate),
        )

    def choose_bin(self, item: Arrival, open_bins: Sequence[Bin]):
        for b in open_bins:
            if b.fits(item):
                return b
        self._pending = self._pick_flavor(item)
        return OPEN_NEW

    def new_bin_capacity(self, item: Arrival):
        assert self._pending is not None
        return self._pending.capacity

    def on_bin_opened(self, bin: Bin, item: Arrival) -> None:
        assert self._pending is not None
        bin.label = self._pending.name
        self._pending = None

    def __repr__(self) -> str:
        return (
            f"FlavorAwareFirstFit({[f.name for f in self.flavors]}, "
            f"open_policy={self.open_policy!r})"
        )


def fleet_bill(
    result: PackingResult,
    flavors: Sequence[Flavor],
    *,
    billing_quantum: Num | None = None,
) -> RegionBill:
    """Price a mixed-fleet packing: each bin at its flavour's rate."""
    pricing = RegionPricing(
        rates={f.name: f.rate for f in flavors},
        billing_quantum=billing_quantum,
    )
    return price_by_region(result, pricing)
