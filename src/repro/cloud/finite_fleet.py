"""Finite fleets: admission control when servers are capped.

The paper (and :mod:`repro.core.simulator`) assumes an unlimited bin
supply — the public-cloud premise.  Real deployments cap concurrent VMs
(quota, budget, a private cluster).  This module adds that regime: a
dispatcher with at most ``fleet_limit`` concurrent servers that either
**queues** arrivals FIFO until capacity frees, or **drops** them.

Semantics:

* A queued session plays for its full duration once admitted (the player
  waits in a lobby; the session shifts, it does not shrink).
* Departures at an instant are processed before arrivals, and every
  departure triggers FIFO admission attempts (no head-of-line bypass: if
  the queue head does not fit, nothing behind it is tried — fairness over
  utilisation, the common lobby policy).
* Placement uses any online packing algorithm; ``OPEN_NEW`` is honoured
  only below the fleet cap.

This engine intentionally reuses :class:`~repro.core.bin.Bin` but not the
infinite-supply simulator: the departure times depend on admission times,
which the core replay cannot know up front.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from ..core.numeric import Num
from ..algorithms.base import Arrival, OPEN_NEW, PackingAlgorithm
from ..core.bin import Bin
from ..core.cost import CostModel
from ..core.item import Item
from ..core.resources import oversize_dimension, size_fits
from ..core.validation import OversizedItemError
from .dispatcher import ServerType

__all__ = ["AdmissionPolicy", "QueueingReport", "FiniteFleetDispatcher", "serve_with_fleet_limit"]

#: Admission policies.
QUEUE = "queue"
DROP = "drop"
AdmissionPolicy = str
_POLICIES = (QUEUE, DROP)


@dataclass(frozen=True, slots=True)
class _Request:
    item: Item
    seq: int


@dataclass(slots=True)
class QueueingReport:
    """Outcome of serving a trace on a capped fleet."""

    fleet_limit: int
    policy: AdmissionPolicy
    num_requests: int
    num_served: int
    num_dropped: int
    total_cost: Num  #: continuous server-time cost
    billed_cost: Num  #: under the server type's billing model
    peak_servers: int
    waits: list[Num] = field(default_factory=list)  #: per served request

    @property
    def drop_rate(self) -> float:
        return self.num_dropped / self.num_requests if self.num_requests else 0.0

    @property
    def mean_wait(self) -> float:
        return float(sum(self.waits) / len(self.waits)) if self.waits else 0.0

    @property
    def max_wait(self) -> Num:
        return max(self.waits, default=0)

    @property
    def queue_rate(self) -> float:
        """Fraction of served requests that had to wait."""
        if not self.waits:
            return 0.0
        return sum(1 for w in self.waits if w > 0) / len(self.waits)


class FiniteFleetDispatcher:
    """Event-driven engine for capped fleets (driven via :func:`serve_with_fleet_limit`)."""

    def __init__(
        self,
        algorithm: PackingAlgorithm,
        *,
        fleet_limit: int,
        server_type: ServerType | None = None,
        policy: AdmissionPolicy = QUEUE,
    ) -> None:
        if fleet_limit < 1:
            raise ValueError(f"fleet limit must be ≥ 1, got {fleet_limit}")
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; options: {_POLICIES}")
        self.algorithm = algorithm
        self.fleet_limit = fleet_limit
        self.server_type = server_type or ServerType()
        self.policy = policy

        self._open: list[Bin] = []
        self._all: list[Bin] = []
        self._heap: list[tuple[Num, int, str, Bin]] = []  # departures
        self._queue: deque[_Request] = deque()
        self._waits: list[Num] = []
        self._served = 0
        self._dropped = 0
        self._peak = 0
        self._tiebreak = 0
        algorithm.reset(self.server_type.gpu_capacity)

    # ------------------------------------------------------------- internals

    def _try_place(self, request: _Request, now: Num) -> bool:
        item = request.item
        view = Arrival(item_id=item.item_id, size=item.size, arrival=now, tag=item.tag)
        choice = self.algorithm.choose_bin(view, self._open)
        if choice is OPEN_NEW or choice is None:
            if len(self._open) >= self.fleet_limit:
                return False
            target = Bin(index=len(self._all), capacity=self.server_type.gpu_capacity)
            target.add(view, now)
            self._open.append(target)
            self._all.append(target)
            self.algorithm.on_bin_opened(target, view)
        else:
            target = choice  # type: ignore[assignment]
            if not target.fits(view):
                raise RuntimeError(
                    f"algorithm {self.algorithm.name!r} chose an unfit bin for "
                    f"{item.item_id!r}"
                )
            target.add(view, now)
        self._peak = max(self._peak, len(self._open))
        departure = now + item.length
        self._tiebreak += 1
        heapq.heappush(self._heap, (departure, self._tiebreak, item.item_id, target))
        self._waits.append(now - item.arrival)
        self._served += 1
        return True

    def _drain_departures(self, until: Num) -> None:
        """Process departures ≤ ``until``; admit queued requests after each."""
        while self._heap and self._heap[0][0] <= until:
            time, _, item_id, target = heapq.heappop(self._heap)
            target.remove(item_id, time)
            if target.is_closed:
                self._open.remove(target)
            self.algorithm.on_item_departed(item_id, target)
            self._admit_from_queue(time)

    def _admit_from_queue(self, now: Num) -> None:
        while self._queue and self._try_place(self._queue[0], now):
            self._queue.popleft()

    # ------------------------------------------------------------------ API

    def serve(self, items: Iterable[Item]) -> QueueingReport:
        """Serve a whole trace; returns the queueing report.

        Raises
        ------
        OversizedItemError
            If any request demands more than one server's capacity.  Such
            a request could never be admitted: under ``QUEUE`` it would
            block the FIFO queue forever, under ``DROP`` silently
            discarding it would misreport the drop as congestion.  Both
            policies reject it up front, before any request is served.
        """
        requests = [
            _Request(item=item, seq=i)
            for i, item in enumerate(
                sorted(items, key=lambda it: (it.arrival, it.item_id))
            )
        ]
        capacity = self.server_type.gpu_capacity
        for request in requests:
            if not size_fits(request.item.size, capacity):
                raise OversizedItemError(
                    request.item.size,
                    capacity,
                    item_id=request.item.item_id,
                    dimension=oversize_dimension(request.item.size, capacity),
                )
        n = len(requests)
        for request in requests:
            self._drain_departures(request.item.arrival)
            if not self._try_place(request, request.item.arrival):
                if self.policy == QUEUE:
                    self._queue.append(request)
                else:
                    self._dropped += 1
        # Drain everything; queued requests admit as capacity frees.
        while self._heap:
            self._drain_departures(self._heap[0][0])
        assert not self._queue, "queue failed to drain after all departures"

        continuous = self.server_type.continuous_model()
        billed: CostModel = self.server_type.billed_model()
        total = 0
        billed_total = 0
        for b in self._all:
            total = total + continuous.bin_cost(b.usage_length)
            billed_total = billed_total + billed.bin_cost(b.usage_length)
        return QueueingReport(
            fleet_limit=self.fleet_limit,
            policy=self.policy,
            num_requests=n,
            num_served=self._served,
            num_dropped=self._dropped,
            total_cost=total,
            billed_cost=billed_total,
            peak_servers=self._peak,
            waits=self._waits,
        )


def serve_with_fleet_limit(
    items: Iterable[Item],
    algorithm: PackingAlgorithm,
    *,
    fleet_limit: int,
    server_type: ServerType | None = None,
    policy: AdmissionPolicy = QUEUE,
) -> QueueingReport:
    """Serve a trace on a capped fleet (fresh dispatcher per call)."""
    dispatcher = FiniteFleetDispatcher(
        algorithm,
        fleet_limit=fleet_limit,
        server_type=server_type,
        policy=policy,
    )
    return dispatcher.serve(items)
