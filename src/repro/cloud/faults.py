"""Server fault injection and session recovery for streamed dispatch.

The MinTotal DBP model assumes rented servers never fail, but the cloud
substrate the paper targets — spot/preemptible VMs serving gaming
sessions — loses servers mid-session: the provider reclaims a spot
instance, or a host crashes.  Kamali & López-Ortiz's server-renting
analysis and the DVBP placement line both observe that *re-placement*
behaviour dominates real cost once bins can die; this module lets us
measure exactly that.

Three pieces:

* :class:`FaultInjector` — a deterministic, seeded failure process.
  Either a Poisson process of the given ``rate`` (failures per time unit)
  or an explicit ``schedule`` of failure times.  When a failure fires,
  the victim server is chosen by the failure ``model``: ``CRASH`` picks a
  uniformly random open server, ``SPOT`` revokes the most recently opened
  one (the youngest spot capacity is reclaimed first).  A failure that
  strikes an empty fleet is counted and otherwise ignored.
* A **recovery policy** — evicted sessions are re-dispatched through the
  same packing algorithm at the failure instant: ``RECONNECT`` resumes
  with the session's *remaining* duration (progress survives, as with
  server-side save state), ``RESTART`` replays the *full* duration from
  scratch (progress lost).  Each re-dispatch is a fresh arrival the
  algorithm places online, exactly like the original.
* :class:`FaultReport` — deterministic accounting: revocation schedule,
  evictions, lost and re-dispatched work.  Identical seeds produce
  byte-identical reports (``to_json``).

:func:`simulate_faulty_stream` drives the core
:class:`~repro.core.simulator.Simulator` in O(active sessions) memory and
reproduces :func:`~repro.core.streaming.simulate_stream`'s event order
exactly, so a zero-failure run matches the fault-free engine *to the
float*.  With ``record_induced=True`` it also returns the **induced
trace** — every served attempt as a plain item whose departure is its
natural end or its eviction instant — which replayed through
``simulate(..., indexed=False)`` must reproduce the faulty run's packing
bit for bit (the differential-test oracle).
"""

from __future__ import annotations

import heapq
import json
import random
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # runtime import would cycle: resilience wraps this package
    from ..resilience.retry import CircuitBreaker, RetryPolicy

from ..core.numeric import Num
from ..algorithms.base import PackingAlgorithm
from ..core.bin import Bin
from ..core.events import EventOrderError
from ..core.item import Item
from ..core.resources import oversize_dimension, size_fits
from ..core.simulator import Simulator
from ..core.streaming import StreamSummary
from ..core.telemetry import SimulationObserver
from ..core.validation import OversizedItemError
from .dispatcher import ServerType, _BillingMeter

__all__ = [
    "SPOT",
    "CRASH",
    "RECONNECT",
    "RESTART",
    "FaultInjector",
    "FaultReport",
    "FaultyStreamResult",
    "FaultyDispatchReport",
    "simulate_faulty_stream",
    "dispatch_faulty_stream",
]

#: Failure models (victim selection).
SPOT = "spot"
CRASH = "crash"
_MODELS = (SPOT, CRASH)

#: Recovery policies for evicted sessions.
RECONNECT = "reconnect"
RESTART = "restart"
_RECOVERIES = (RECONNECT, RESTART)


@dataclass(frozen=True, slots=True)
class FaultInjector:
    """A deterministic, seeded server-failure process.

    Parameters
    ----------
    rate:
        Expected failures per time unit (a Poisson process on the run's
        time axis).  ``0`` — and no ``schedule`` — means no failures.
    schedule:
        Explicit failure times (non-decreasing, positive); overrides
        ``rate``.  Equal times are allowed and strike distinct victims.
    model:
        ``CRASH`` (uniformly random open server) or ``SPOT`` (most
        recently opened server — youngest spot capacity goes first).
    seed:
        Seeds both the Poisson gaps and the victim draws; equal seeds
        reproduce the exact same revocation schedule.
    """

    rate: float = 0.0
    schedule: tuple[Num, ...] | None = None
    model: str = CRASH
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"failure rate must be >= 0, got {self.rate}")
        if self.model not in _MODELS:
            raise ValueError(f"unknown failure model {self.model!r}; options: {_MODELS}")
        if self.schedule is not None:
            times = tuple(self.schedule)
            object.__setattr__(self, "schedule", times)
            if any(t <= 0 for t in times):
                raise ValueError(f"scheduled failure times must be positive: {times}")
            if any(b < a for a, b in zip(times, times[1:])):
                raise ValueError(f"failure schedule must be non-decreasing: {times}")

    def failure_times(self, rng: random.Random) -> Iterator[Num]:
        """Lazily yield failure instants (``rng`` drives the Poisson gaps)."""
        if self.schedule is not None:
            yield from self.schedule
            return
        if self.rate <= 0:
            return
        t = 0.0
        while True:
            t += rng.expovariate(self.rate)
            yield t

    def pick_victim(self, rng: random.Random, open_bins: Sequence[Bin]) -> Bin:
        """Choose the server to revoke among ``open_bins`` (opening order)."""
        if self.model == SPOT:
            return open_bins[-1]
        return open_bins[rng.randrange(len(open_bins))]


@dataclass(frozen=True, slots=True)
class FaultReport:
    """Deterministic accounting of one faulty run.

    ``lost_work`` is elapsed session-time discarded by evictions (only
    ``RESTART`` loses progress); ``redispatch_work`` is the session-time
    scheduled anew at recovery (remaining duration under ``RECONNECT``,
    full duration under ``RESTART``).  ``revocations`` is the full
    ``(time, server index, sessions evicted)`` schedule.  Same injector
    seed ⇒ byte-identical :meth:`to_json` output.
    """

    model: str
    recovery: str
    seed: int
    rate: float
    num_failures: int
    num_idle_strikes: int
    sessions_evicted: int
    sessions_redispatched: int
    lost_work: Num
    redispatch_work: Num
    revocations: tuple[tuple[Num, int, int], ...]
    #: Re-dispatches whose re-admission was deferred by backoff/breaker.
    sessions_delayed: int = 0
    #: Total simulated time spent waiting between eviction and re-admission.
    total_retry_delay: Num = 0
    #: Evictions that found their recovery key's circuit open.
    breaker_trips: int = 0

    def to_json(self) -> str:
        """Canonical JSON rendering (sorted keys — byte-stable per seed)."""
        return json.dumps(asdict(self), sort_keys=True)


@dataclass(frozen=True, slots=True)
class FaultyStreamResult:
    """Outcome of a faulty streamed run: engine summary + fault accounting.

    ``summary.num_items`` counts *admissions* — original sessions plus
    every recovery re-dispatch (each is a fresh online arrival).
    ``induced_items`` (with ``record_induced=True``) is the run's induced
    trace: one item per served attempt, arrival = admission time,
    departure = natural end or eviction instant, in admission order —
    replaying it through a fault-free simulation reproduces this packing.
    """

    summary: StreamSummary
    report: FaultReport
    induced_items: tuple[Item, ...] | None = None


@dataclass(frozen=True, slots=True)
class FaultyDispatchReport:
    """Billing view of a faulty streamed dispatch (cloud vocabulary)."""

    algorithm_name: str
    server_type: ServerType
    summary: StreamSummary
    report: FaultReport
    continuous_cost: Num
    billed_cost: Num
    num_servers_rented: int
    peak_concurrent_servers: int
    num_sessions: int


@dataclass(slots=True)
class _Attempt:
    """One service attempt of a session (original admission or re-dispatch)."""

    item_id: str
    orig_id: str
    size: Num
    tag: Any
    start: Num
    departure: Num  # scheduled; eviction may end the attempt earlier
    full_length: Num
    attempt: int
    end: Num | None = field(default=None)


def simulate_faulty_stream(
    items: Iterable[Item],
    algorithm: PackingAlgorithm,
    *,
    injector: FaultInjector,
    recovery: str = RECONNECT,
    capacity: Num = 1,
    cost_rate: Num = 1,
    strict: bool = True,
    indexed: bool = True,
    observers: Sequence[SimulationObserver] = (),
    record_induced: bool = False,
    retry_policy: "RetryPolicy | None" = None,
    breaker: "CircuitBreaker | None" = None,
) -> FaultyStreamResult:
    """Stream a trace through an algorithm while servers fail and recover.

    Event order extends the engine's rule: at one instant, departures are
    processed first, then failures (a session departing exactly when its
    server dies has already left), then arrivals — recovery re-dispatches
    before any same-instant stream arrival.  All failures sharing one
    instant evict before any eviction is re-dispatched, so every attempt
    has strictly positive length.  With no failures the run is
    event-for-event identical to
    :func:`~repro.core.streaming.simulate_stream`.

    ``retry_policy`` (a :class:`repro.resilience.RetryPolicy`) defers each
    re-dispatch by the seeded backoff for that session's attempt number on
    the *simulated* clock, instead of re-admitting at the failure instant;
    ``breaker`` (a :class:`repro.resilience.CircuitBreaker`) additionally
    holds re-admission until the session's recovery key cools down.  The
    key is the session ``tag`` when it is a string (sessions sharing a
    tag share a circuit — region semantics) and the original session id
    otherwise; a natural departure records success and closes the
    circuit.  Both default to ``None``, which preserves the legacy
    re-admit-immediately behaviour byte for byte.
    """
    if recovery not in _RECOVERIES:
        raise ValueError(f"unknown recovery policy {recovery!r}; options: {_RECOVERIES}")
    sim = Simulator(
        algorithm,
        capacity=capacity,
        cost_rate=cost_rate,
        strict=strict,
        indexed=indexed,
        record=False,
        observers=observers,
    )
    rng = random.Random(injector.seed)
    fail_times = injector.failure_times(rng)
    next_fail: Num | None = next(fail_times, None)

    pending: list[tuple[Num, int, str]] = []  # (departure, seq, item_id) — may hold stale ids
    active: dict[str, _Attempt] = {}
    delayed: list[tuple[Num, int, _Attempt]] = []  # backoff/breaker re-admissions
    induced: list[_Attempt] | None = [] if record_induced else None
    seq = 0
    last_arrival: Num | None = None

    num_failures = 0
    idle_strikes = 0
    evicted_total = 0
    redispatched = 0
    lost_work: Num = 0
    redispatch_work: Num = 0
    revocations: list[tuple[Num, int, int]] = []
    sessions_delayed = 0
    total_retry_delay: Num = 0
    breaker_trips = 0

    def recovery_key(attempt: _Attempt) -> str:
        # String tags group sessions into shared circuits (region
        # semantics); anything else isolates per original session.
        return attempt.tag if isinstance(attempt.tag, str) else attempt.orig_id

    def admit(attempt: _Attempt) -> None:
        nonlocal seq
        sim.arrive(attempt.start, attempt.size, item_id=attempt.item_id, tag=attempt.tag)
        heapq.heappush(pending, (attempt.departure, seq, attempt.item_id))
        seq += 1
        active[attempt.item_id] = attempt
        if induced is not None:
            induced.append(attempt)

    def depart_next() -> None:
        dep_time, _, item_id = heapq.heappop(pending)
        attempt = active.pop(item_id)
        sim.depart(item_id, dep_time)
        attempt.end = dep_time
        if breaker is not None:
            breaker.record_success(recovery_key(attempt))

    def admit_delayed_next() -> None:
        admit_time, _, attempt = heapq.heappop(delayed)
        assert attempt.start == admit_time
        admit(attempt)

    def process_failures_at(time: Num) -> None:
        # All failures at this instant evict before any re-dispatch, so a
        # recovered session is never struck again at its admission time
        # (which would create a zero-length attempt).
        nonlocal next_fail, num_failures, idle_strikes, evicted_total
        nonlocal redispatched, lost_work, redispatch_work, seq
        nonlocal sessions_delayed, total_retry_delay, breaker_trips
        evicted: list[_Attempt] = []
        while next_fail is not None and next_fail == time:
            open_bins = list(sim.open_bins)
            if open_bins:
                victim = injector.pick_victim(rng, open_bins)
                views = sim.fail_bin(victim, time)
                num_failures += 1
                revocations.append((time, victim.index, len(views)))
                for view in views:
                    attempt = active.pop(view.item_id)
                    attempt.end = time
                    evicted.append(attempt)
            else:
                idle_strikes += 1
            next_fail = next(fail_times, None)
        evicted_total += len(evicted)
        for old in evicted:
            if recovery == RESTART:
                lost_work = lost_work + (time - old.start)
                remaining = old.full_length
            else:
                remaining = old.departure - time
            redispatch_work = redispatch_work + remaining
            redispatched += 1
            admit_at = time
            if retry_policy is not None:
                admit_at = admit_at + retry_policy.delay(
                    old.attempt + 1, key=recovery_key(old)
                )
            if breaker is not None:
                if breaker.record_failure(recovery_key(old), time):
                    breaker_trips += 1
                blocked = breaker.blocked_until(recovery_key(old), time)
                if blocked > admit_at:
                    admit_at = blocked
            retry = _Attempt(
                item_id=f"{old.orig_id}~a{old.attempt + 1}",
                orig_id=old.orig_id,
                size=old.size,
                tag=old.tag,
                start=admit_at,
                departure=admit_at + remaining,
                full_length=old.full_length,
                attempt=old.attempt + 1,
            )
            if admit_at > time:
                sessions_delayed += 1
                total_retry_delay = total_retry_delay + (admit_at - time)
                heapq.heappush(delayed, (admit_at, seq, retry))
                seq += 1
            else:
                admit(retry)

    def drain(until: Num) -> None:
        """Process departures, failures, and due re-admissions <= ``until``.

        Ties run departures first, then failures, then deferred
        re-admissions — a re-admission landing exactly on a failure
        instant is placed after that instant's evictions, so it cannot be
        struck into a zero-length attempt.
        """
        while True:
            while pending and pending[0][2] not in active:
                heapq.heappop(pending)  # stale: the session was evicted
            dep_time: Num | None = pending[0][0] if pending else None
            if dep_time is not None and dep_time > until:
                dep_time = None
            fail_time = next_fail if next_fail is not None and next_fail <= until else None
            adm_time: Num | None = delayed[0][0] if delayed else None
            if adm_time is not None and adm_time > until:
                adm_time = None
            if dep_time is None and fail_time is None and adm_time is None:
                return
            if (
                dep_time is not None
                and (fail_time is None or dep_time <= fail_time)
                and (adm_time is None or dep_time <= adm_time)
            ):
                depart_next()
            elif fail_time is not None and (adm_time is None or fail_time <= adm_time):
                process_failures_at(fail_time)
            else:
                admit_delayed_next()

    for item in items:
        if not size_fits(item.size, capacity):
            raise OversizedItemError(
                item.size,
                capacity,
                item_id=item.item_id,
                dimension=oversize_dimension(item.size, capacity),
            )
        if last_arrival is not None and item.arrival < last_arrival:
            raise EventOrderError(
                f"item {item.item_id!r} arrives at {item.arrival}, before the "
                f"previous arrival at {last_arrival}; faulty streams require "
                "non-decreasing arrival times",
                item_id=item.item_id,
            )
        last_arrival = item.arrival
        drain(item.arrival)
        admit(
            _Attempt(
                item_id=item.item_id,
                orig_id=item.item_id,
                size=item.size,
                tag=item.tag,
                start=item.arrival,
                departure=item.departure,
                full_length=item.length,
                attempt=0,
            )
        )

    # End of stream: serve out the remaining sessions, including any
    # re-admissions still waiting out their backoff.  Failures past the
    # last event would strike an empty fleet; they are not generated.
    while active or delayed:
        while pending and pending[0][2] not in active:
            heapq.heappop(pending)
        dep_time = pending[0][0] if pending else None
        adm_time = delayed[0][0] if delayed else None
        if dep_time is not None and (adm_time is None or dep_time <= adm_time):
            next_event = dep_time
        else:
            next_event = adm_time
        assert next_event is not None  # active ⇒ a departure, delayed ⇒ an admission
        if next_fail is not None and next_fail < next_event:
            process_failures_at(next_fail)
        elif next_event == dep_time and dep_time is not None:
            depart_next()
        else:
            admit_delayed_next()

    summary = sim.finish_summary()
    report = FaultReport(
        model=injector.model,
        recovery=recovery,
        seed=injector.seed,
        rate=injector.rate,
        num_failures=num_failures,
        num_idle_strikes=idle_strikes,
        sessions_evicted=evicted_total,
        sessions_redispatched=redispatched,
        lost_work=lost_work,
        redispatch_work=redispatch_work,
        revocations=tuple(revocations),
        sessions_delayed=sessions_delayed,
        total_retry_delay=total_retry_delay,
        breaker_trips=breaker_trips,
    )
    induced_items: tuple[Item, ...] | None = None
    if induced is not None:
        finished: list[Item] = []
        for a in induced:
            assert a.end is not None  # while-active loop drained every attempt
            finished.append(
                Item(
                    arrival=a.start,
                    departure=a.end,
                    size=a.size,
                    item_id=a.item_id,
                    tag=a.tag,
                )
            )
        induced_items = tuple(finished)
    return FaultyStreamResult(summary=summary, report=report, induced_items=induced_items)


def dispatch_faulty_stream(
    sessions: Iterable[Item],
    algorithm: PackingAlgorithm,
    *,
    injector: FaultInjector,
    recovery: str = RECONNECT,
    server_type: ServerType | None = None,
    observers: Sequence[SimulationObserver] = (),
    retry_policy: "RetryPolicy | None" = None,
    breaker: "CircuitBreaker | None" = None,
) -> FaultyDispatchReport:
    """Serve a session stream on failure-prone servers and settle the bill.

    The billing meter settles each server when it releases *or fails* —
    a revoked server is billed up to the revocation instant (the
    spot-market rule), so every rented server is billed exactly once.
    ``observers`` attach additional observers after the internal meter,
    as in :func:`repro.cloud.dispatcher.dispatch_stream`.
    ``retry_policy``/``breaker`` defer re-admissions as in
    :func:`simulate_faulty_stream`.
    """
    server_type = server_type or ServerType()
    meter = _BillingMeter(server_type.billed_model())
    result = simulate_faulty_stream(
        sessions,
        algorithm,
        injector=injector,
        recovery=recovery,
        capacity=server_type.gpu_capacity,
        cost_rate=server_type.rate,
        observers=(meter, *observers),
        retry_policy=retry_policy,
        breaker=breaker,
    )
    summary = result.summary
    return FaultyDispatchReport(
        algorithm_name=algorithm.name,
        server_type=server_type,
        summary=summary,
        report=result.report,
        continuous_cost=summary.total_cost,
        billed_cost=meter.billed,
        num_servers_rented=summary.num_bins_used,
        peak_concurrent_servers=summary.peak_open_bins,
        num_sessions=summary.num_items,
    )
