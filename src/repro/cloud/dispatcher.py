"""Cloud-gaming request dispatching on rented game servers.

The substrate the paper motivates: playing requests arrive at a service
provider, which dispatches each to a game-server VM with enough free GPU
capacity (or rents a fresh VM); a VM is released when its last session
ends.  This is exactly MinTotal DBP with bins = VMs and items = sessions,
so the dispatcher is a domain facade over the core simulator, adding VM
vocabulary and billing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from ..core.numeric import Num
from ..algorithms.base import Arrival, PackingAlgorithm
from ..core.cost import ContinuousCost, CostModel, QuantizedCost
from ..core.item import Item
from ..core.metrics import utilization
from ..core.result import PackingResult
from ..core.simulator import Simulator
from ..core.streaming import StreamRepacker, StreamSummary, simulate_stream
from ..core.telemetry import SimulationObserver
from ..workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..core.bin import Bin
    from ..core.checkpoint import StreamCheckpoint

__all__ = [
    "ServerType",
    "DispatchReport",
    "StreamDispatchReport",
    "CloudGamingDispatcher",
    "dispatch_trace",
    "dispatch_stream",
]


@dataclass(frozen=True, slots=True)
class ServerType:
    """A rentable VM flavour for game serving.

    ``gpu_capacity`` is the bin capacity W (GPU rendering units); rates
    are per time unit of the traces (minutes in the bundled workloads).
    """

    name: str = "gpu-server"
    gpu_capacity: Num = 1.0
    rate: Num = 1.0
    billing_quantum: Num | None = 60.0  # EC2-style hourly billing

    def __post_init__(self) -> None:
        if self.gpu_capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.gpu_capacity}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.billing_quantum is not None and self.billing_quantum <= 0:
            raise ValueError(f"billing quantum must be positive, got {self.billing_quantum}")

    def continuous_model(self) -> CostModel:
        return ContinuousCost(rate=self.rate)

    def billed_model(self) -> CostModel:
        if self.billing_quantum is None:
            return self.continuous_model()
        return QuantizedCost(rate=self.rate, quantum=self.billing_quantum)


@dataclass(frozen=True, slots=True)
class DispatchReport:
    """Cost summary of serving a full trace of playing requests."""

    algorithm_name: str
    server_type: ServerType
    result: PackingResult
    continuous_cost: Num  #: the paper's objective
    billed_cost: Num  #: under the server type's billing quanta
    num_servers_rented: int
    peak_concurrent_servers: int
    num_sessions: int
    utilization: float

    @property
    def cost_per_session(self) -> float:
        return float(self.continuous_cost) / self.num_sessions

    def summary_row(self) -> dict[str, Any]:
        """A table row for experiment E10."""
        return {
            "algorithm": self.algorithm_name,
            "servers": self.num_servers_rented,
            "peak": self.peak_concurrent_servers,
            "server-time": float(self.continuous_cost / self.server_type.rate),
            "cost(cont)": float(self.continuous_cost),
            "cost(billed)": float(self.billed_cost),
            "util": self.utilization,
        }


@dataclass(frozen=True, slots=True)
class StreamDispatchReport:
    """Cost summary of a *streamed* trace: aggregates only, O(1) state.

    The streaming counterpart of :class:`DispatchReport` for traces too
    large to keep a :class:`~repro.core.result.PackingResult` for —
    utilization needs per-item demand history and is therefore absent.
    """

    algorithm_name: str
    server_type: ServerType
    summary: StreamSummary
    continuous_cost: Num  #: the paper's objective
    billed_cost: Num  #: under the server type's billing quanta
    num_servers_rented: int
    peak_concurrent_servers: int
    num_sessions: int

    @property
    def cost_per_session(self) -> float:
        return float(self.continuous_cost) / self.num_sessions


class _BillingMeter(SimulationObserver):
    """Accrues quantised billing as servers are released.

    Every rented server is settled exactly once, whichever way its rental
    ends: the ``closed=True`` departure of its last session, or a mid-run
    revocation (``on_server_failure`` — failed servers still bill up to the
    failure instant, the spot-market rule).  ``servers_billed`` counts the
    settlements so end-of-run tests can assert nothing bypassed the meter.
    """

    def __init__(self, model: CostModel) -> None:
        self.model = model
        self.billed: Num = 0
        self.servers_billed: int = 0

    def _settle(self, bin: "Bin") -> None:
        self.billed = self.billed + self.model.bin_cost(bin.usage_length)
        self.servers_billed += 1

    def on_departure(self, time: Num, item_id: str, bin: "Bin", closed: bool) -> None:
        if closed:
            self._settle(bin)

    def on_server_failure(
        self, time: Num, bin: "Bin", evicted: Sequence[Arrival]
    ) -> None:
        self._settle(bin)

    def on_migration(
        self,
        time: Num,
        item: Arrival,
        from_bin: "Bin",
        to_bin: "Bin",
        from_closed: bool,
        to_opened: bool,
    ) -> None:
        # A consolidating move can empty the source server, ending its
        # rental mid-session-lifetime; settle it here so every server is
        # still billed exactly once.  The session itself is never billed —
        # only server usage periods are — so a move can't double-bill it.
        if from_closed:
            self._settle(from_bin)

    def checkpoint_state(self) -> dict[str, Any]:
        return {"billed": self.billed, "servers_billed": self.servers_billed}

    def restore_state(self, state: dict[str, Any]) -> None:
        self.billed = state["billed"]
        self.servers_billed = state["servers_billed"]


def dispatch_stream(
    sessions: Iterable[Item],
    algorithm: PackingAlgorithm,
    *,
    server_type: ServerType | None = None,
    observers: Sequence[SimulationObserver] = (),
    checkpoint_every: int | None = None,
    on_checkpoint: "Callable[[StreamCheckpoint], None] | None" = None,
    resume_from: "StreamCheckpoint | None" = None,
    repacker: "StreamRepacker | None" = None,
) -> StreamDispatchReport:
    """Serve an arrival-ordered session stream in O(active sessions) memory.

    ``sessions`` may be any iterable — typically a generator such as
    :func:`repro.workloads.generators.stream_trace` — yielding items with
    non-decreasing arrival times.  Billing is metered as servers are
    released, so million-session traces never materialize.

    ``observers`` attach additional :class:`SimulationObserver` instances
    (e.g. a :class:`repro.obs.MetricsObserver` or lifecycle tracer) after
    the internal billing meter; the order is stable, so checkpoints —
    whose observer states are positional — resume correctly as long as
    the resuming call passes the same observers.

    Checkpoint/resume works as in
    :func:`repro.core.streaming.simulate_stream`; the billing meter's
    accrued state rides along in each snapshot, so a resumed dispatch
    bills exactly what the uninterrupted one would.

    Pass a ``repacker`` (e.g. :class:`repro.renting.BoundedRepacker`) for
    migration-bounded dispatch: sessions may be live-migrated between
    servers within the repacker's budget, and a source server emptied by a
    move is released and settled at that instant.
    """
    server_type = server_type or ServerType()
    meter = _BillingMeter(server_type.billed_model())
    summary = simulate_stream(
        sessions,
        algorithm,
        capacity=server_type.gpu_capacity,
        cost_rate=server_type.rate,
        observers=(meter, *observers),
        checkpoint_every=checkpoint_every,
        on_checkpoint=on_checkpoint,
        resume_from=resume_from,
        repacker=repacker,
    )
    return StreamDispatchReport(
        algorithm_name=algorithm.name,
        server_type=server_type,
        summary=summary,
        continuous_cost=summary.total_cost,
        billed_cost=meter.billed,
        num_servers_rented=summary.num_bins_used,
        peak_concurrent_servers=summary.peak_open_bins,
        num_sessions=summary.num_items,
    )


class CloudGamingDispatcher:
    """Online dispatcher: drive it with session starts/ends, then settle.

    >>> from repro.algorithms import FirstFit
    >>> d = CloudGamingDispatcher(FirstFit())
    >>> _ = d.start_session(0.0, gpu_demand=0.5, request_id="alice", game="skyrim")
    >>> _ = d.start_session(1.0, gpu_demand=0.5, request_id="bob", game="dota-2")
    >>> d.active_sessions
    2
    >>> d.end_session("alice", 30.0); d.end_session("bob", 45.0)
    >>> report = d.shutdown()
    >>> report.num_servers_rented
    1
    """

    def __init__(
        self,
        algorithm: PackingAlgorithm,
        *,
        server_type: ServerType | None = None,
        observers: Sequence[SimulationObserver] = (),
    ) -> None:
        self.server_type = server_type or ServerType()
        self._algorithm = algorithm
        self._sim = Simulator(
            algorithm,
            capacity=self.server_type.gpu_capacity,
            cost_rate=self.server_type.rate,
            observers=observers,
        )

    @property
    def active_sessions(self) -> int:
        return len(self._sim.active_item_ids)

    @property
    def servers_in_use(self) -> int:
        return self._sim.num_open_bins

    def start_session(
        self,
        time: Num,
        *,
        gpu_demand: Num,
        request_id: str | None = None,
        game: str | None = None,
    ) -> int:
        """Dispatch a playing request; returns the server index serving it."""
        placed = self._sim.arrive(time, gpu_demand, item_id=request_id, tag=game)
        return placed.index

    def end_session(self, request_id: str, time: Num) -> None:
        """The player stops playing; the session's server may be released."""
        self._sim.depart(request_id, time)

    def shutdown(self) -> DispatchReport:
        """Settle all rentals (every session must have ended)."""
        result = self._sim.finish()
        return _report(result, self._algorithm, self.server_type)


def _report(
    result: PackingResult, algorithm: PackingAlgorithm, server_type: ServerType
) -> DispatchReport:
    return DispatchReport(
        algorithm_name=algorithm.name,
        server_type=server_type,
        result=result,
        continuous_cost=result.total_cost(server_type.continuous_model()),
        billed_cost=result.total_cost(server_type.billed_model()),
        num_servers_rented=result.num_bins_used,
        peak_concurrent_servers=result.max_bins_used,
        num_sessions=len(result.items),
        utilization=utilization(result),
    )


def dispatch_trace(
    trace: Trace,
    algorithm: PackingAlgorithm,
    *,
    server_type: ServerType | None = None,
) -> DispatchReport:
    """Serve a whole request trace with one algorithm and settle the bill."""
    from ..core.simulator import simulate

    server_type = server_type or ServerType()
    result = simulate(
        trace.items,
        algorithm,
        capacity=server_type.gpu_capacity,
        cost_rate=server_type.rate,
    )
    return _report(result, algorithm, server_type)
