"""Cloud substrate: game-server VMs, online dispatch, billing."""

from .dispatcher import (
    CloudGamingDispatcher,
    DispatchReport,
    ServerType,
    StreamDispatchReport,
    dispatch_stream,
    dispatch_trace,
)
from .faults import (
    CRASH,
    RECONNECT,
    RESTART,
    SPOT,
    FaultInjector,
    FaultReport,
    FaultyDispatchReport,
    FaultyStreamResult,
    dispatch_faulty_stream,
    simulate_faulty_stream,
)
from .finite_fleet import (
    FiniteFleetDispatcher,
    QueueingReport,
    serve_with_fleet_limit,
)
from .flavors import Flavor, FlavorAwareFirstFit, fleet_bill
from .multi_region import RegionBill, RegionPricing, price_by_region

__all__ = [
    "Flavor",
    "FlavorAwareFirstFit",
    "fleet_bill",
    "FiniteFleetDispatcher",
    "QueueingReport",
    "serve_with_fleet_limit",
    "ServerType",
    "DispatchReport",
    "StreamDispatchReport",
    "CloudGamingDispatcher",
    "dispatch_trace",
    "dispatch_stream",
    "RegionPricing",
    "RegionBill",
    "price_by_region",
    "SPOT",
    "CRASH",
    "RECONNECT",
    "RESTART",
    "FaultInjector",
    "FaultReport",
    "FaultyStreamResult",
    "FaultyDispatchReport",
    "simulate_faulty_stream",
    "dispatch_faulty_stream",
]
