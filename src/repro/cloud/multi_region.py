"""Multi-region billing for zone-constrained dispatch.

Public clouds price the *same* VM differently per region; once bins carry
zone labels (see :mod:`repro.constrained`), a packing's bill decomposes by
region.  This module prices a finished packing under per-zone rates and
billing quanta, giving the constrained experiments a dollars-denominated
view of the locality premium.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.numeric import Num
from ..core.cost import ContinuousCost, CostModel, QuantizedCost
from ..core.result import PackingResult

__all__ = ["RegionPricing", "RegionBill", "price_by_region"]


@dataclass(frozen=True, slots=True)
class RegionPricing:
    """Per-zone rates (cost per time unit) and an optional billing quantum."""

    rates: Mapping[str, Num]
    billing_quantum: Num | None = None
    #: Rate applied to bins whose label is not in ``rates`` (None = error).
    default_rate: Num | None = None

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("need at least one zone rate")
        for zone, rate in self.rates.items():
            if rate <= 0:
                raise ValueError(f"rate for zone {zone!r} must be positive, got {rate}")
        if self.billing_quantum is not None and self.billing_quantum <= 0:
            raise ValueError(f"billing quantum must be positive, got {self.billing_quantum}")
        if self.default_rate is not None and self.default_rate <= 0:
            raise ValueError(f"default rate must be positive, got {self.default_rate}")

    def model_for(self, zone: object) -> CostModel:
        rate = self.rates.get(zone, self.default_rate)  # type: ignore[arg-type]
        if rate is None:
            raise KeyError(
                f"no rate configured for zone {zone!r} and no default_rate set"
            )
        if self.billing_quantum is None:
            return ContinuousCost(rate=rate)
        return QuantizedCost(rate=rate, quantum=self.billing_quantum)


@dataclass(slots=True)
class RegionBill:
    """A packing's bill decomposed by region."""

    per_zone_cost: dict[str, Num] = field(default_factory=dict)
    per_zone_bins: dict[str, int] = field(default_factory=dict)
    per_zone_time: dict[str, Num] = field(default_factory=dict)

    @property
    def total(self) -> Num:
        total: Num = 0
        for cost in self.per_zone_cost.values():
            total = total + cost
        return total

    def zones(self) -> list[str]:
        return sorted(self.per_zone_cost)


def price_by_region(result: PackingResult, pricing: RegionPricing) -> RegionBill:
    """Bill every bin of a packing at its zone's rate.

    Bin zone = ``bin.label`` (set by the constrained algorithms; plain
    algorithms leave it ``None``, which requires ``default_rate``).
    """
    bill = RegionBill()
    for b in result.bins:
        zone = b.label if isinstance(b.label, str) else str(b.label)
        model = pricing.model_for(b.label)
        cost = model.bin_cost(b.usage_length)
        bill.per_zone_cost[zone] = bill.per_zone_cost.get(zone, 0) + cost
        bill.per_zone_bins[zone] = bill.per_zone_bins.get(zone, 0) + 1
        bill.per_zone_time[zone] = bill.per_zone_time.get(zone, 0) + b.usage_length
    return bill
