"""OPT machinery: load profiles, bounds b.1-b.3, snapshot packing, brackets."""

from .load import active_profile, load_profile, load_profile_np, max_load
from .lower_bounds import (
    OptBracket,
    demand_lower_bound,
    dominance_lower_bound,
    naive_upper_bound,
    opt_bracket,
    opt_total_lower_bound,
    pointwise_lower_bound,
    robust_ceil,
    span_lower_bound,
)
from .fluid import (
    expected_active_items,
    min_average_bins,
    offered_load,
    peak_bins_estimate,
)
from .offline import NoMigrationPlan, no_migration_opt_total
from .snapshot import (
    SearchLimitReached,
    l2_lower_bound,
    opt_total_l2_lower_bound,
    exact_bin_count,
    ffd_bin_count,
    opt_total_exact,
    opt_total_ffd_upper_bound,
    snapshot_profile,
)

__all__ = [
    "load_profile",
    "load_profile_np",
    "active_profile",
    "max_load",
    "robust_ceil",
    "demand_lower_bound",
    "span_lower_bound",
    "pointwise_lower_bound",
    "dominance_lower_bound",
    "naive_upper_bound",
    "opt_total_lower_bound",
    "OptBracket",
    "opt_bracket",
    "ffd_bin_count",
    "exact_bin_count",
    "SearchLimitReached",
    "snapshot_profile",
    "opt_total_ffd_upper_bound",
    "opt_total_exact",
    "l2_lower_bound",
    "opt_total_l2_lower_bound",
    "no_migration_opt_total",
    "NoMigrationPlan",
    "offered_load",
    "min_average_bins",
    "expected_active_items",
    "peak_bins_estimate",
]
