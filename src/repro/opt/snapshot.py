"""Per-snapshot bin packing: FFD heuristic and exact branch-and-bound.

``OPT(R,t)`` asks for the minimum number of bins holding the items active at
time ``t`` — a classical (static) bin packing instance per snapshot.  This
module solves those snapshots:

* :func:`ffd_bin_count` — First Fit Decreasing, the standard 11/9-apx
  heuristic, giving an upper bound on the snapshot optimum;
* :func:`exact_bin_count` — Martello-Toth-style branch and bound with
  dominance reductions, exact for the small/medium snapshots that arise in
  the experiments;
* sweep integrators turning per-snapshot counts into bounds on
  ``OPT_total = ∫ OPT(R,t)·C dt``.
"""

from __future__ import annotations

import numbers
from fractions import Fraction
from typing import Iterable, Sequence

from ..core.events import EventKind, compile_events
from ..core.item import Item
from .lower_bounds import robust_ceil

__all__ = [
    "ffd_bin_count",
    "exact_bin_count",
    "l2_lower_bound",
    "SearchLimitReached",
    "snapshot_profile",
    "opt_total_ffd_upper_bound",
    "opt_total_exact",
    "opt_total_l2_lower_bound",
]


def _eps_for(values: Iterable[numbers.Real]) -> numbers.Real:
    """Comparison slack: zero for exact types, tiny for floats.

    Returns an *int* zero in the exact case — ``Fraction + 0.0`` would
    silently degrade every subsequent comparison to float.
    """
    if all(isinstance(v, (int, Fraction)) for v in values):
        return 0
    return 1e-12


def ffd_bin_count(sizes: Sequence[numbers.Real], capacity: numbers.Real = 1) -> int:
    """Number of bins First Fit Decreasing uses for a static size list."""
    eps = _eps_for(sizes)
    residuals: list[numbers.Real] = []
    for size in sorted(sizes, reverse=True):
        if size > capacity + eps:
            raise ValueError(f"size {size} exceeds capacity {capacity}")
        for i, res in enumerate(residuals):
            if size <= res + eps:
                residuals[i] = res - size
                break
        else:
            residuals.append(capacity - size)
    return len(residuals)


def l2_lower_bound(sizes: Sequence[numbers.Real], capacity: numbers.Real = 1) -> int:
    """Martello & Toth's L2 lower bound on the snapshot bin count.

    For a threshold ``α ∈ [0, W/2]`` split the items into
    ``J1 = {s > W−α}``, ``J2 = {W/2 < s ≤ W−α}``, ``J3 = {α ≤ s ≤ W/2}``:
    every J1/J2 item needs its own bin, and J3 volume beyond J2's residual
    space needs fresh bins.  ``L2 = max_α`` of that count dominates
    ``⌈Σs/W⌉`` (α = 0) and is still a true lower bound — e.g. three items
    of size 0.6 give L2 = 3 where the volume bound says 2.
    """
    items = [s for s in sizes]
    if not items:
        return 0
    eps = _eps_for(items)
    for s in items:
        if s > capacity + eps:
            raise ValueError(f"size {s} exceeds capacity {capacity}")
    half = capacity / 2
    candidates = {0}
    for s in items:
        if s <= half + eps:
            candidates.add(s)
    best = 0
    for alpha in sorted(candidates):
        j1 = j2 = 0
        j2_residual: numbers.Real = 0
        j3_volume: numbers.Real = 0
        for s in items:
            if s > capacity - alpha + eps:
                j1 += 1
            elif s > half + eps:
                j2 += 1
                j2_residual = j2_residual + (capacity - s)
            elif s >= alpha - eps:
                j3_volume = j3_volume + s
        overflow = j3_volume - j2_residual
        extra = robust_ceil(overflow / capacity) if overflow > eps else 0
        best = max(best, j1 + j2 + extra)
    return best


class SearchLimitReached(RuntimeError):
    """Exact search exceeded its node budget; the instance is too large."""


def exact_bin_count(
    sizes: Sequence[numbers.Real],
    capacity: numbers.Real = 1,
    *,
    node_limit: int = 2_000_000,
) -> int:
    """Exact minimum number of bins for a static size list.

    Depth-first branch and bound over items in decreasing size order.  At
    each node the current item is tried in every open bin with a distinct
    residual (symmetric bins are equivalent) and, if the bin budget allows,
    in a new bin.  Pruning uses the continuous lower bound
    ``⌈remaining size that cannot reuse open residuals / W⌉``.

    Raises
    ------
    SearchLimitReached
        If more than ``node_limit`` nodes are expanded.  Snapshots in the
        provided experiments stay far below the default limit.
    """
    items = sorted(sizes, reverse=True)
    if not items:
        return 0
    eps = _eps_for(items)
    for s in items:
        if s > capacity + eps:
            raise ValueError(f"size {s} exceeds capacity {capacity}")
        if s <= 0:
            raise ValueError(f"sizes must be positive, got {s}")

    best = ffd_bin_count(items, capacity)
    root_lb = robust_ceil(sum(items) / capacity)
    if best <= root_lb:
        return best

    # Suffix sums for the continuous bound.
    suffix: list[numbers.Real] = [0] * (len(items) + 1)
    for i in range(len(items) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + items[i]

    residuals: list[numbers.Real] = []
    nodes = 0

    def dfs(i: int) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > node_limit:
            raise SearchLimitReached(
                f"exact bin packing exceeded {node_limit} nodes on {len(items)} items"
            )
        if len(residuals) >= best:
            return
        if i == len(items):
            best = len(residuals)
            return
        # Continuous completion bound: remaining volume beyond what the open
        # residual space can absorb still needs fresh bins.
        free = sum(residuals)
        overflow = suffix[i] - free
        if overflow > eps:
            extra = robust_ceil(overflow / capacity)
            if len(residuals) + extra >= best:
                return
        size = items[i]

        # Dominance: a perfect fit is always at least as good as any other
        # placement of this item (it cannot hurt later items).
        for j, res in enumerate(residuals):
            if abs(res - size) <= eps:
                residuals[j] = res - size
                dfs(i + 1)
                residuals[j] = res
                return

        tried: set[numbers.Real] = set()
        for j, res in enumerate(residuals):
            if size <= res + eps and res not in tried:
                tried.add(res)
                residuals[j] = res - size
                dfs(i + 1)
                residuals[j] = res
        if len(residuals) + 1 < best:
            residuals.append(capacity - size)
            dfs(i + 1)
            residuals.pop()

    dfs(0)
    return best


def snapshot_profile(
    items: Iterable[Item],
    capacity: numbers.Real = 1,
    *,
    method: str = "ffd",
    node_limit: int = 2_000_000,
) -> tuple[list[numbers.Real], list[int]]:
    """Per-segment repacked bin counts over the whole trace.

    Sweeps the event sequence and solves a static packing of the active set
    on each inter-event segment.  ``method`` is ``"ffd"`` (upper bound on
    the snapshot optimum) or ``"exact"``.

    Returns ``(times, counts)``: ``counts[i]`` holds on
    ``[times[i], times[i+1])``; the final count is zero.
    """
    if method not in ("ffd", "exact"):
        raise ValueError(f"method must be 'ffd' or 'exact', got {method!r}")
    active: dict[str, numbers.Real] = {}
    times: list[numbers.Real] = []
    counts: list[int] = []
    events = compile_events(items)
    i = 0
    while i < len(events):
        t = events[i].time
        while i < len(events) and events[i].time == t:
            ev = events[i]
            if ev.kind is EventKind.ARRIVAL:
                active[ev.item.item_id] = ev.item.size
            else:
                del active[ev.item.item_id]
            i += 1
        sizes = list(active.values())
        if method == "ffd":
            count = ffd_bin_count(sizes, capacity)
        else:
            count = exact_bin_count(sizes, capacity, node_limit=node_limit)
        times.append(t)
        counts.append(count)
    return times, counts


def _integrate(times: Sequence[numbers.Real], counts: Sequence[int]) -> numbers.Real:
    total: numbers.Real = 0
    for i in range(len(times) - 1):
        if counts[i]:
            total = total + counts[i] * (times[i + 1] - times[i])
    return total


def opt_total_ffd_upper_bound(
    items: Iterable[Item], *, capacity: numbers.Real = 1, cost_rate: numbers.Real = 1
) -> numbers.Real:
    """``C·∫ FFD(t) dt ≥ OPT_total``: the offline repack-with-FFD schedule.

    Since ``OPT(R,t) ≤ FFD(t)`` at every instant, this integral upper-bounds
    ``OPT_total``, closing the bracket opened by the lower bounds.
    """
    times, counts = snapshot_profile(items, capacity, method="ffd")
    return cost_rate * _integrate(times, counts)


def opt_total_exact(
    items: Iterable[Item],
    *,
    capacity: numbers.Real = 1,
    cost_rate: numbers.Real = 1,
    node_limit: int = 2_000_000,
) -> numbers.Real:
    """``OPT_total(R) = ∫ OPT(R,t)·C dt`` computed exactly per snapshot.

    Feasible for traces whose snapshots stay small; experiments fall back to
    :func:`opt_bracket <repro.opt.lower_bounds.opt_bracket>` otherwise.
    """
    times, counts = snapshot_profile(items, capacity, method="exact", node_limit=node_limit)
    return cost_rate * _integrate(times, counts)


def opt_total_l2_lower_bound(
    items: Iterable[Item], *, capacity: numbers.Real = 1, cost_rate: numbers.Real = 1
) -> numbers.Real:
    """``C·∫ L2(active items at t) dt ≤ OPT_total``.

    The L2 sweep dominates the pointwise ``⌈load/W⌉`` integral whenever
    big items coexist (items above W/2 cannot share bins), tightening the
    OPT bracket on large-item workloads.
    """
    active: dict[str, numbers.Real] = {}
    events = compile_events(items)
    total: numbers.Real = 0
    i = 0
    prev_time: numbers.Real | None = None
    prev_count = 0
    while i < len(events):
        t = events[i].time
        if prev_time is not None and prev_count:
            total = total + prev_count * (t - prev_time)
        while i < len(events) and events[i].time == t:
            ev = events[i]
            if ev.kind is EventKind.ARRIVAL:
                active[ev.item.item_id] = ev.item.size
            else:
                del active[ev.item.item_id]
            i += 1
        prev_time = t
        prev_count = l2_lower_bound(list(active.values()), capacity)
    return cost_rate * total
