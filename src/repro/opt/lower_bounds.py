"""Lower and upper bounds for ``OPT_total`` (Section 4's bounds b.1-b.3).

``OPT(R,t)`` — the minimum bins into which the items active at ``t`` can be
repacked — is NP-hard per snapshot, so experiments bracket ``OPT_total``:

* **(b.1) demand bound**: ``OPT_total ≥ C·u(R)/W``.
* **(b.2) span bound**: ``OPT_total ≥ C·span(R)``.
* **pointwise load bound** (refines both): at each instant OPT needs at
  least ``⌈load(t)/W⌉`` bins, so ``OPT_total ≥ C·∫⌈load(t)/W⌉ dt``.
* **(b.3) upper bound**: ``A_total(R) ≤ C·Σ_r len(I(r))`` for any A.
* **FFD repack upper bound** on OPT_total: repacking the active set with
  First Fit Decreasing at every event is a feasible offline schedule, and
  ``OPT(R,t) ≤ FFD(t)`` pointwise (see :mod:`repro.opt.snapshot`).
"""

from __future__ import annotations

import math
import numbers
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from ..core.item import Item
from ..core.metrics import total_demand, trace_span
from ..core.resources import Resources, Size
from .load import load_profile

__all__ = [
    "robust_ceil",
    "demand_lower_bound",
    "span_lower_bound",
    "pointwise_lower_bound",
    "dominance_lower_bound",
    "naive_upper_bound",
    "opt_total_lower_bound",
    "OptBracket",
    "opt_bracket",
]

#: Relative tolerance used when ceiling float ratios; a load within this
#: relative distance below an integer is treated as exactly that integer.
CEIL_REL_TOL = 1e-9


def robust_ceil(x: numbers.Real) -> int:
    """``⌈x⌉`` that forgives float summation error just below integers.

    Exact for ``int``/``Fraction``.  For floats, ``robust_ceil(3.0000000001)``
    is 3, not 4 — loads are sums of item sizes and may carry rounding error.
    """
    if isinstance(x, (int, Fraction)):
        return math.ceil(x)
    nearest = round(x)
    if abs(x - nearest) <= CEIL_REL_TOL * max(1.0, abs(x)):
        return int(nearest)
    return math.ceil(x)


def demand_lower_bound(
    items: Iterable[Item], *, capacity: numbers.Real = 1, cost_rate: numbers.Real = 1
) -> numbers.Real:
    """Bound (b.1): ``C·u(R)/W``."""
    return cost_rate * total_demand(items) / capacity


def span_lower_bound(items: Iterable[Item], *, cost_rate: numbers.Real = 1) -> numbers.Real:
    """Bound (b.2): ``C·span(R)``."""
    return cost_rate * trace_span(items)


def pointwise_lower_bound(
    items: Sequence[Item], *, capacity: numbers.Real = 1, cost_rate: numbers.Real = 1
) -> numbers.Real:
    """``C·∫ ⌈load(t)/W⌉ dt`` — dominates both (b.1) and (b.2).

    Wherever the load is positive at least one bin is needed (b.2's
    argument), and ``⌈load/W⌉ ≥ load/W`` recovers (b.1) under the integral.
    """
    times, loads = load_profile(items)
    total: numbers.Real = 0
    for i in range(len(times) - 1):
        bins_needed = robust_ceil(loads[i] / capacity)
        if bins_needed:
            total = total + bins_needed * (times[i + 1] - times[i])
    return cost_rate * total


def dominance_lower_bound(
    items: Sequence[Item], *, capacity: "Size" = 1, cost_rate: numbers.Real = 1
) -> numbers.Real:
    """Vector lower bound: the best single-dimension pointwise bound.

    A feasible vector packing is simultaneously a feasible scalar packing
    of every one of its per-dimension projections (dominance ``size ≤
    capacity`` implies ``size_d ≤ W_d`` for each ``d``), so ``OPT_total``
    for the vector instance is at least the pointwise load bound of each
    projection — and hence at least their maximum.  For scalar traces this
    is exactly :func:`pointwise_lower_bound`.
    """
    items = list(items)
    if not items or not isinstance(items[0].size, Resources):
        return pointwise_lower_bound(
            items, capacity=capacity, cost_rate=cost_rate
        )
    dims = items[0].size.dims
    best: numbers.Real = 0
    for d in range(dims):
        cap_d = capacity[d] if isinstance(capacity, Resources) else capacity
        # Zero components carry no load in this dimension; dropping them
        # keeps the projected items valid (Item requires a positive size).
        projected = [
            Item(
                arrival=it.arrival,
                departure=it.departure,
                size=it.size[d],
                item_id=it.item_id,
            )
            for it in items
            if it.size[d] > 0
        ]
        bound = pointwise_lower_bound(
            projected, capacity=cap_d, cost_rate=cost_rate
        )
        if bound > best:
            best = bound
    return best


def naive_upper_bound(items: Iterable[Item], *, cost_rate: numbers.Real = 1) -> numbers.Real:
    """Bound (b.3): ``C·Σ_r len(I(r))`` — the one-bin-per-item cost."""
    total: numbers.Real = 0
    for it in items:
        total = total + it.length
    return cost_rate * total


def opt_total_lower_bound(
    items: Sequence[Item], *, capacity: numbers.Real = 1, cost_rate: numbers.Real = 1
) -> numbers.Real:
    """The best available lower bound on ``OPT_total(R)``.

    This is the pointwise load bound, which is ≥ max(b.1, b.2); the paper's
    competitive ratios are proved against max(b.1, b.2), so measured ratios
    against this bound are conservative (never overstate the algorithm).
    """
    return pointwise_lower_bound(items, capacity=capacity, cost_rate=cost_rate)


@dataclass(frozen=True, slots=True)
class OptBracket:
    """Lower/upper bracket of ``OPT_total`` plus its constituents."""

    demand_lb: numbers.Real
    span_lb: numbers.Real
    pointwise_lb: numbers.Real
    ffd_ub: numbers.Real
    #: Optional Martello-Toth L2 sweep (stronger on large-item mixes);
    #: computed when opt_bracket(..., include_l2=True).
    l2_lb: numbers.Real | None = None

    @property
    def lower(self) -> numbers.Real:
        best = max(self.demand_lb, self.span_lb, self.pointwise_lb)
        if self.l2_lb is not None and self.l2_lb > best:
            return self.l2_lb
        return best

    @property
    def upper(self) -> numbers.Real:
        return self.ffd_ub

    @property
    def is_tight(self) -> bool:
        """Whether the bracket pins ``OPT_total`` exactly."""
        return self.lower == self.upper


def opt_bracket(
    items: Sequence[Item],
    *,
    capacity: numbers.Real = 1,
    cost_rate: numbers.Real = 1,
    include_l2: bool = False,
) -> OptBracket:
    """Compute the full ``OPT_total`` bracket for a trace.

    ``include_l2`` adds the Martello-Toth L2 sweep to the lower side —
    strictly stronger when items above W/2 coexist, but quadratic in the
    concurrent-item count per event, so it is opt-in.
    """
    from .snapshot import opt_total_ffd_upper_bound, opt_total_l2_lower_bound

    return OptBracket(
        demand_lb=demand_lower_bound(items, capacity=capacity, cost_rate=cost_rate),
        span_lb=span_lower_bound(items, cost_rate=cost_rate),
        pointwise_lb=pointwise_lower_bound(items, capacity=capacity, cost_rate=cost_rate),
        ffd_ub=opt_total_ffd_upper_bound(items, capacity=capacity, cost_rate=cost_rate),
        l2_lb=(
            opt_total_l2_lower_bound(items, capacity=capacity, cost_rate=cost_rate)
            if include_l2
            else None
        ),
    )
