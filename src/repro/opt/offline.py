"""Exact *no-migration* offline optimum for small instances.

The paper's ``OPT_total`` allows repacking at every instant (the integral
of per-snapshot optima).  A second natural benchmark keeps the paper's
no-migration rule but grants full knowledge of the future: choose one bin
per item, fixed forever, to minimise total bin-time.  Between the two sits
every real system:

    pointwise LB ≤ OPT_total (repacking) ≤ OPT_nomig ≤ best online ≤ FF

Cost model: a bin is open while it holds items, so a fixed assignment's
cost is ``Σ_groups span(group)`` — a group with a gap in coverage closes
and reopens, which costs the same as two bins.  The problem is therefore:
partition the items into groups that never exceed capacity at any instant,
minimising the summed group spans.  NP-hard; solved here by depth-first
branch and bound over items in arrival order, feasible for the ≤ ~20-item
instances the experiments use.
"""

from __future__ import annotations

import numbers
from typing import Sequence

from ..core.interval import Interval, union_length
from ..core.item import Item
from .lower_bounds import pointwise_lower_bound
from .snapshot import SearchLimitReached

__all__ = ["no_migration_opt_total", "NoMigrationPlan"]


class NoMigrationPlan:
    """Result of the exact no-migration search."""

    def __init__(self, cost: numbers.Real, groups: list[list[Item]]):
        self.cost = cost
        self.groups = groups

    @property
    def num_bins(self) -> int:
        return len(self.groups)

    def assignment(self) -> dict[str, int]:
        return {it.item_id: g for g, group in enumerate(self.groups) for it in group}


def _fits(group: list[Item], item: Item, capacity: numbers.Real) -> bool:
    """Whether ``item`` can join ``group`` without exceeding capacity.

    The load within ``I(item)`` is piecewise constant with breakpoints at
    member arrivals; checking item's own arrival plus member arrivals
    inside the interval suffices.
    """
    overlapping = [
        x
        for x in group
        if x.arrival < item.departure and item.arrival < x.departure
    ]
    if not overlapping:
        return True
    checkpoints = {item.arrival}
    for x in overlapping:
        if item.arrival <= x.arrival < item.departure:
            checkpoints.add(x.arrival)
    for t in sorted(checkpoints):
        load = item.size
        for x in overlapping:
            if x.arrival <= t < x.departure:
                load = load + x.size
        if load > capacity:
            return False
    return True


def no_migration_opt_total(
    items: Sequence[Item],
    *,
    capacity: numbers.Real = 1,
    cost_rate: numbers.Real = 1,
    node_limit: int = 5_000_000,
    return_plan: bool = False,
):
    """Exact minimum total cost over fixed (no-migration) assignments.

    Branch and bound over items in (arrival, id) order: each item joins a
    feasible existing group or opens a new one (one new-group branch —
    groups are interchangeable).  Pruning: summed group spans never shrink
    as items are added, so any partial assignment whose spans already meet
    the incumbent is dead; the repacking lower bound seeds the incumbent
    check.

    Raises :class:`~repro.opt.snapshot.SearchLimitReached` past
    ``node_limit`` nodes — this is an exponential search meant for small
    experiment instances.
    """
    order = sorted(items, key=lambda it: (it.arrival, it.item_id))
    if not order:
        return (0, NoMigrationPlan(0, [])) if return_plan else 0
    for it in order:
        if it.size > capacity:
            raise ValueError(f"item {it.item_id!r} exceeds capacity")

    # Incumbent: First Fit's cost (always a valid fixed assignment).
    from ..algorithms.first_fit import FirstFit
    from ..core.simulator import simulate

    ff = simulate(order, FirstFit(), capacity=capacity)
    best_cost = ff.total_cost() / ff.cost_rate
    best_groups: list[list[Item]] = [
        [ff.item_by_id(i) for i in rec.item_ids] for rec in ff.bins
    ]
    floor = pointwise_lower_bound(order, capacity=capacity)

    groups: list[list[Item]] = []
    spans: list[numbers.Real] = []
    nodes = 0

    def dfs(i: int, current: numbers.Real) -> None:
        nonlocal nodes, best_cost, best_groups
        nodes += 1
        if nodes > node_limit:
            raise SearchLimitReached(
                f"no-migration search exceeded {node_limit} nodes on {len(order)} items"
            )
        if current >= best_cost:
            return
        if i == len(order):
            best_cost = current
            best_groups = [list(g) for g in groups]
            return
        item = order[i]
        iv = Interval(item.arrival, item.departure)
        for g in range(len(groups)):
            if not _fits(groups[g], item, capacity):
                continue
            old_span = spans[g]
            new_span = union_length(
                [Interval(x.arrival, x.departure) for x in groups[g]] + [iv]
            )
            groups[g].append(item)
            spans[g] = new_span
            dfs(i + 1, current - old_span + new_span)
            groups[g].pop()
            spans[g] = old_span
        # One canonical new-group branch.
        groups.append([item])
        spans.append(iv.length)
        dfs(i + 1, current + iv.length)
        groups.pop()
        spans.pop()

    dfs(0, 0)
    assert best_cost >= floor - (0 if isinstance(best_cost, int) else 1e-9), (
        "no-migration optimum fell below the repacking lower bound — bug"
    )
    cost = best_cost * cost_rate
    if return_plan:
        return cost, NoMigrationPlan(cost, best_groups)
    return cost
