"""Fluid (heavy-traffic) estimates for capacity planning.

For Poisson(λ) arrivals with i.i.d. durations S and sizes Z, the system is
an M/G/∞ in items: the stationary *offered load* is

    ρ = λ·E[S]·E[Z]           (capacity-time demand per time unit)

so any packing needs at least ``ρ/W`` bins on long-run average (bound b.1
per unit time), and the expected number of concurrently active items is
``λ·E[S]`` (Little's law).  These closed forms give instant sanity checks
and provisioning estimates; the tests validate them against simulated
traces, and they calibrate the experiments' arrival rates.
"""

from __future__ import annotations

import math
import numbers

from ..workloads.distributions import Distribution

__all__ = [
    "offered_load",
    "min_average_bins",
    "expected_active_items",
    "peak_bins_estimate",
]


def offered_load(
    arrival_rate: float, duration: Distribution, size: Distribution
) -> float:
    """``ρ = λ·E[S]·E[Z]``: long-run capacity-time demand per time unit."""
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    return arrival_rate * duration.mean() * size.mean()


def min_average_bins(
    arrival_rate: float,
    duration: Distribution,
    size: Distribution,
    *,
    capacity: numbers.Real = 1,
) -> float:
    """``ρ/W``: the b.1 floor on the long-run average open-bin count."""
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return offered_load(arrival_rate, duration, size) / float(capacity)


def expected_active_items(arrival_rate: float, duration: Distribution) -> float:
    """Little's law: ``λ·E[S]`` concurrently active sessions."""
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    return arrival_rate * duration.mean()


def peak_bins_estimate(
    arrival_rate: float,
    duration: Distribution,
    size: Distribution,
    *,
    capacity: numbers.Real = 1,
    quantile_z: float = 3.0,
) -> float:
    """A provisioning estimate for the *peak* open-bin count.

    The active-item count is Poisson(λE[S]); treating per-item capacity use
    as its mean, load ≈ Normal(ρ, σ²) with σ² ≈ λ·E[S]·E[Z²] (compound
    Poisson variance, E[Z²] estimated from the distribution's support
    midpoint when unavailable — this is an *estimate*, not a bound).  The
    returned value is ``(ρ + z·σ)/W``.

    Tested only for shape (simulated peaks fall below the z = 3 estimate on
    calibrated workloads); use :func:`repro.opt.load.max_load` for the true
    realized peak.
    """
    if quantile_z < 0:
        raise ValueError(f"z must be non-negative, got {quantile_z}")
    rho = offered_load(arrival_rate, duration, size)
    # Second moment of Z: sample it (distributions expose mean + sampling).
    import numpy as np

    rng = np.random.default_rng(0)
    z2 = float((size.sample(rng, 20000) ** 2).mean())
    var = arrival_rate * duration.mean() * z2
    return (rho + quantile_z * math.sqrt(var)) / float(capacity)
