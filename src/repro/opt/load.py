"""Load profiles: the total active size as a step function of time.

The instantaneous load ``load(t) = Σ_{r active at t} s(r)`` drives every
OPT lower bound: at time ``t`` any packing needs at least
``⌈load(t)/W⌉`` bins.  The profile is piecewise constant between event
times, so integrals over it are exact sums.

Two implementations are provided: an exact generic one (works with
``Fraction`` endpoints — used by the adversarial constructions) and a
vectorised NumPy one for large float traces (used by the workload
experiments; see the HPC guide's "vectorise the measured bottleneck").
Both return the same ``(times, loads)`` convention: ``loads[i]`` holds on
``[times[i], times[i+1])`` and the last load is always zero.
"""

from __future__ import annotations

import numbers
from typing import Iterable, Sequence

import numpy as np

from ..core.item import Item

__all__ = ["load_profile", "load_profile_np", "active_profile", "max_load"]


def load_profile(items: Iterable[Item]) -> tuple[list[numbers.Real], list[numbers.Real]]:
    """Exact load step function of a trace.

    Returns ``(times, loads)`` with ``loads[i]`` the total active size on
    ``[times[i], times[i+1])``.  Arithmetic is exact for exact inputs; with
    floats, sizes are re-summed per breakpoint group (never incrementally
    drifting) by accumulating signed deltas of the original values.
    """
    deltas: dict[numbers.Real, numbers.Real] = {}
    for it in items:
        deltas[it.arrival] = deltas.get(it.arrival, 0) + it.size
        deltas[it.departure] = deltas.get(it.departure, 0) - it.size
    times = sorted(deltas)
    loads: list[numbers.Real] = []
    running: numbers.Real = 0
    for t in times:
        running = running + deltas[t]
        loads.append(running)
    if loads:
        # The final segment is after the last departure; force exact zero to
        # clear any float residue from the +/- cancellation.
        loads[-1] = 0
    return times, loads


def load_profile_np(items: Sequence[Item]) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised float load profile (same convention as :func:`load_profile`)."""
    n = len(items)
    if n == 0:
        return np.empty(0), np.empty(0)
    times = np.empty(2 * n)
    deltas = np.empty(2 * n)
    for i, it in enumerate(items):
        times[i] = it.arrival
        deltas[i] = it.size
        times[n + i] = it.departure
        deltas[n + i] = -it.size
    order = np.argsort(times, kind="stable")
    times = times[order]
    loads = np.cumsum(deltas[order])
    # Collapse duplicate breakpoints, keeping the final load at each time.
    keep = np.empty(2 * n, dtype=bool)
    keep[:-1] = times[:-1] != times[1:]
    keep[-1] = True
    times = times[keep]
    loads = loads[keep]
    loads[-1] = 0.0
    return times, loads


def active_profile(items: Iterable[Item]) -> tuple[list[numbers.Real], list[int]]:
    """Step function of the number of active items."""
    deltas: dict[numbers.Real, int] = {}
    for it in items:
        deltas[it.arrival] = deltas.get(it.arrival, 0) + 1
        deltas[it.departure] = deltas.get(it.departure, 0) - 1
    times = sorted(deltas)
    counts: list[int] = []
    running = 0
    for t in times:
        running += deltas[t]
        counts.append(running)
    return times, counts


def max_load(items: Iterable[Item]) -> numbers.Real:
    """Peak instantaneous load of the trace."""
    _, loads = load_profile(items)
    return max(loads, default=0)
