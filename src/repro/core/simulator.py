"""The discrete-event MinTotal DBP simulator.

Two driving styles share one engine:

* :func:`simulate` replays a complete item list (a trace) against an
  algorithm — the common case for workloads and experiments.  Generator
  inputs with sorted arrivals are streamed through the lazy event merge
  (:func:`repro.core.events.iter_events`) without materializing the trace.
* :class:`Simulator` is the incremental engine itself, which *adaptive
  adversaries* drive step by step: they submit arrivals, observe the
  resulting bin states, and only then decide departure times.  The paper's
  lower-bound constructions (Theorems 1 and 2) are adaptive in exactly this
  sense.

The engine is exact: bin costs are accumulated per usage period with no time
discretisation, simultaneous events are ordered departures-first (see
:mod:`repro.core.events`), and online-ness is enforced structurally — the
algorithm only ever sees :class:`~repro.algorithms.base.Arrival` views,
which carry no departure time.

Open bins live in an :class:`~repro.core.bin_index.OpenBinIndex` — a
slot-map with per-label ordered residual indexes — so membership checks and
removals are O(1) and algorithms implementing the indexed selection
protocol (:meth:`PackingAlgorithm.choose_bin_indexed`) place items in
O(log n) instead of scanning every open bin.  Algorithms without an indexed
path transparently fall back to the classic list scan over an immutable
:class:`~repro.core.bin_index.OpenBinView`.
"""

from __future__ import annotations

from collections.abc import Iterator as _Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence, cast

from .numeric import Num
from ..algorithms.base import OPEN_NEW, Arrival, PackingAlgorithm
from .bin import Bin
from .bin_index import OpenBinIndex, OpenBinView
from .events import EventKind, _merge_events, iter_events
from .item import Item, validate_items
from .resources import (
    Resources,
    Size,
    dims_of,
    is_valid_capacity,
    is_valid_size,
    oversize_dimension,
    size_fits,
)
from .result import BinRecord, PackingResult
from .validation import (
    InvalidItemSizeError,
    OversizedItemError,
    ResourceDimensionError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .streaming import StreamRepacker, StreamSummary
    from .telemetry import SimulationObserver

__all__ = ["Simulator", "simulate", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for protocol violations (bad algorithm choice, time travel...)."""


def _indexed_is_authoritative(cls: type) -> bool:
    """Whether ``cls.choose_bin_indexed`` speaks for ``cls.choose_bin``.

    A subclass may override ``choose_bin`` (tests and experiments wrap the
    stock algorithms this way) while inheriting a parent's indexed path —
    which would then silently bypass the override.  The indexed path is
    only authoritative when it is (re)defined at or below the most-derived
    ``choose_bin`` override in the MRO.
    """
    for klass in cls.__mro__:
        if "choose_bin_indexed" in klass.__dict__:
            return True
        if "choose_bin" in klass.__dict__:
            return False
    return False


@dataclass(slots=True)
class _ActiveItem:
    view: Arrival
    bin: Bin


class Simulator:
    """Incremental DBP engine.

    Parameters
    ----------
    algorithm:
        The online packing algorithm under test.
    capacity:
        Bin capacity ``W`` (default 1, as in the paper's proofs).
    cost_rate:
        Bin cost rate ``C`` (default 1).
    strict:
        When true (default), validate every algorithm decision: the chosen
        bin must be open and must fit the item.
    indexed:
        When true (default), offer the algorithm the O(log n) indexed
        selection protocol first, falling back to the classic list scan if
        it does not implement it.  Set false to force the list scan — the
        oracle mode the differential tests compare against.
    record:
        When true (default), keep the full history needed for
        :meth:`finish`'s :class:`~repro.core.result.PackingResult`.  When
        false the engine runs in O(active items) memory — no finalized-item
        list, no assignment map, no per-bin logs — and only
        :meth:`finish_summary` is available.  Duplicate item ids are then
        only detected against currently *active* items.
    """

    def __init__(
        self,
        algorithm: PackingAlgorithm,
        *,
        capacity: Size = 1,
        cost_rate: Num = 1,
        strict: bool = True,
        indexed: bool = True,
        record: bool = True,
        observers: Sequence["SimulationObserver"] = (),
    ) -> None:
        if not is_valid_capacity(capacity):
            raise ValueError(f"capacity must be positive, got {capacity}")
        if cost_rate <= 0:
            raise ValueError(f"cost rate must be positive, got {cost_rate}")
        self.algorithm = algorithm
        self.capacity = capacity
        self.cost_rate = cost_rate
        self.strict = strict
        self.observers = list(observers)
        self._record = record
        self._use_indexed = indexed and _indexed_is_authoritative(type(algorithm))
        self._bins = OpenBinIndex()
        self._open_view = OpenBinView(self._bins)
        self._all_bins: list[Bin] = []
        self._active: dict[str, _ActiveItem] = {}
        self._finalized: list[Item] = []
        self._assignment: dict[str, int] = {}
        self._now: Num | None = None
        self._auto_id = 0
        self._bins_opened = 0
        self._peak_open = 0
        self._items_arrived = 0
        self._migrations = 0
        self._closed_bin_time: Num = 0
        # A run is scalar or d-dimensional throughout.  A vector capacity
        # fixes d immediately; a scalar capacity broadcasts to the
        # dimensionality of the first arrival.
        self._item_dims: int | None = dims_of(capacity)
        self._dims_fixed = isinstance(capacity, Resources)
        algorithm.reset(capacity)

    # ------------------------------------------------------------- inspection

    @property
    def now(self) -> Num | None:
        """Time of the last processed event (``None`` before the first)."""
        return self._now

    @property
    def open_bins(self) -> OpenBinView:
        """Currently open bins in opening order (adversaries may inspect).

        An immutable live *view* — O(1) to obtain, no copying.  Iterate it
        freely; positional access works but costs O(n).
        """
        return self._open_view

    @property
    def num_open_bins(self) -> int:
        return len(self._bins)

    @property
    def peak_open_bins(self) -> int:
        """Largest number of simultaneously open bins seen so far."""
        return self._peak_open

    @property
    def active_item_ids(self) -> list[str]:
        return list(self._active)

    @property
    def migrations(self) -> int:
        """Number of :meth:`migrate` moves performed so far."""
        return self._migrations

    def bin_of(self, item_id: str) -> Bin:
        """The bin currently holding an active item."""
        try:
            return self._active[item_id].bin
        except KeyError:
            raise KeyError(f"item {item_id!r} is not active") from None

    # ------------------------------------------------------------ transitions

    def _advance(self, time: Num) -> None:
        if self._now is not None and time < self._now:
            raise SimulationError(
                f"event at time {time} precedes current time {self._now}"
            )
        self._now = time

    def arrive(
        self,
        time: Num,
        size: Size,
        item_id: str | None = None,
        tag: Any = None,
    ) -> Bin:
        """Submit an arrival; returns the bin the algorithm placed it in."""
        self._advance(time)
        if not is_valid_size(size):
            raise InvalidItemSizeError(size, item_id=item_id)
        dims = dims_of(size)
        if not self._dims_fixed:
            self._item_dims = dims
            self._dims_fixed = True
        elif dims != self._item_dims:
            raise ResourceDimensionError(self._item_dims, dims, item_id=item_id)
        # Note: oversize vs the *default* capacity is checked at open time —
        # a flavour-aware algorithm may open a larger bin for this item.
        if item_id is None:
            item_id = f"r{self._auto_id}"
            self._auto_id += 1
        if item_id in self._active or item_id in self._assignment:
            raise SimulationError(f"duplicate item id {item_id!r}")

        view = Arrival(item_id=item_id, size=size, arrival=time, tag=tag)
        choice: Any = NotImplemented
        if self._use_indexed:
            choice = self.algorithm.choose_bin_indexed(view, self._bins)
            if choice is NotImplemented:
                # The algorithm has no indexed path; don't ask again.
                self._use_indexed = False
        if choice is NotImplemented:
            choice = self.algorithm.choose_bin(view, self._open_view)
        if choice is OPEN_NEW or choice is None:
            new_capacity = self.algorithm.new_bin_capacity(view)
            if new_capacity is None:
                new_capacity = self.capacity
            if isinstance(size, Resources) and not isinstance(
                new_capacity, Resources
            ):
                # Scalar-capacity broadcast: capacity W means W per dimension.
                new_capacity = Resources.uniform(new_capacity, size.dims)
            if not size_fits(size, new_capacity):
                raise SimulationError(
                    f"item {item_id!r} of size {size} cannot fit the new bin of "
                    f"capacity {new_capacity} the algorithm requested"
                )
            target = Bin(
                index=self._bins_opened,
                capacity=new_capacity,
                record_log=self._record,
            )
            opened = True
        else:
            target = choice
            opened = False
            if self.strict:
                if not isinstance(target, Bin) or not target.is_open or target not in self._bins:
                    raise SimulationError(
                        f"algorithm {self.algorithm.name!r} returned an invalid bin for "
                        f"{item_id!r}: {choice!r}"
                    )
                if not target.fits(view):
                    raise SimulationError(
                        f"algorithm {self.algorithm.name!r} chose bin {target.index} "
                        f"(residual {target.residual}) for item of size {size}"
                    )
        target.add(view, time)
        if opened:
            self._bins_opened += 1
            if self._record:
                self._all_bins.append(target)
            # The hook runs before indexing so the label it assigns decides
            # the bin's pool (MFF/MBF segregate large/small bins this way).
            self.algorithm.on_bin_opened(target, view)
            self._bins.add(target)
            if len(self._bins) > self._peak_open:
                self._peak_open = len(self._bins)
        else:
            self._bins.update(target)
        self._items_arrived += 1
        self._active[item_id] = _ActiveItem(view=view, bin=target)
        if self._record:
            self._assignment[item_id] = target.index
        for observer in self.observers:
            observer.on_arrival(time, view, target, opened)
        return target

    def depart(self, item_id: str, time: Num) -> Bin:
        """Remove an active item at ``time``; returns its (possibly closed) bin."""
        self._advance(time)
        try:
            record = self._active.pop(item_id)
        except KeyError:
            raise SimulationError(f"cannot depart unknown/inactive item {item_id!r}") from None
        view, target = record.view, record.bin
        if time <= view.arrival:
            raise SimulationError(
                f"item {item_id!r} would depart at {time}, not after its arrival {view.arrival}"
            )
        target.remove(item_id, time)
        if target.is_closed:
            self._bins.discard(target)
            self._closed_bin_time = self._closed_bin_time + target.usage_length
        else:
            self._bins.update(target)
        self.algorithm.on_item_departed(item_id, target)
        for observer in self.observers:
            observer.on_departure(time, item_id, target, target.is_closed)
        if self._record:
            self._finalized.append(
                Item(
                    arrival=view.arrival,
                    departure=time,
                    size=view.size,
                    item_id=item_id,
                    tag=view.tag,
                )
            )
        return target

    def migrate(
        self,
        item_id: str,
        to_bin: Bin | Any = None,
        *,
        time: Num | None = None,
    ) -> Bin:
        """Move an active item into another open bin (or a fresh one).

        The bounded-migration primitive (Berndt–Jansen–Klein style
        repacking): at ``time`` (default: the current simulation time) the
        item leaves its current bin and lands in ``to_bin`` atomically.  If
        the source bin empties it closes *at that instant* and its rental is
        settled exactly — billed usage is unchanged by where the item sits,
        so total cost stays the integral of the open-bin count.  Pass
        ``to_bin=OPEN_NEW`` (or omit it) to open a fresh default-capacity
        bin for the item.

        Observers are notified once through
        :meth:`~repro.core.telemetry.SimulationObserver.on_migration`; the
        packing algorithm is *not* consulted — migration is driven by a
        repacker policy outside the online algorithm, exactly as in the
        fully-dynamic model where the algorithm packs and the repacker
        re-packs.  Stateful algorithms that cache bin references (NextFit's
        current bin, MoveToFront's ordering) remain safe because they check
        ``is_open``/membership before reusing a cached bin.

        Returns the destination bin.
        """
        when = self._now if time is None else time
        if when is None:
            raise SimulationError("cannot migrate before any event has been processed")
        self._advance(when)
        try:
            record = self._active[item_id]
        except KeyError:
            raise SimulationError(
                f"cannot migrate unknown/inactive item {item_id!r}"
            ) from None
        view, source = record.view, record.bin
        if to_bin is OPEN_NEW or to_bin is None:
            new_capacity = self.capacity
            if isinstance(view.size, Resources) and not isinstance(
                new_capacity, Resources
            ):
                new_capacity = Resources.uniform(new_capacity, view.size.dims)
            target = Bin(
                index=self._bins_opened,
                capacity=new_capacity,
                record_log=self._record,
            )
            opened = True
        else:
            target = to_bin
            opened = False
            if target is source:
                raise SimulationError(
                    f"item {item_id!r} is already in bin {source.index}"
                )
            if self.strict:
                if not isinstance(target, Bin) or not target.is_open or target not in self._bins:
                    raise SimulationError(
                        f"cannot migrate {item_id!r} into {to_bin!r}: not an "
                        "open bin of this simulation"
                    )
                if not target.fits(view):
                    raise SimulationError(
                        f"bin {target.index} (residual {target.residual}) cannot "
                        f"take migrated item {item_id!r} of size {view.size}"
                    )
        source.remove(item_id, when)
        from_closed = source.is_closed
        if from_closed:
            self._bins.discard(source)
            self._closed_bin_time = self._closed_bin_time + source.usage_length
        else:
            self._bins.update(source)
        target.add(view, when)
        if opened:
            self._bins_opened += 1
            if self._record:
                self._all_bins.append(target)
            self.algorithm.on_bin_opened(target, view)
            self._bins.add(target)
            if len(self._bins) > self._peak_open:
                self._peak_open = len(self._bins)
        else:
            self._bins.update(target)
        record.bin = target
        if self._record:
            self._assignment[item_id] = target.index
        self._migrations += 1
        for observer in self.observers:
            observer.on_migration(when, view, source, target, from_closed, opened)
        return target

    def fail_bin(self, target: Bin, time: Num) -> list[Arrival]:
        """Revoke an open bin at ``time`` (server failure), evicting its items.

        The bin's usage period ends immediately — its rental is billed up to
        ``time`` exactly as if its last item had departed — and every active
        item it held is evicted and returned (in placement order).  Evicted
        items are no longer active; a recovery layer (see
        :mod:`repro.cloud.faults`) may re-submit them via :meth:`arrive`
        under fresh ids.  Observers are notified once through
        :meth:`~repro.core.telemetry.SimulationObserver.on_server_failure`;
        the algorithm's ``on_item_departed`` hook fires per evicted item so
        stateful algorithms stay consistent.
        """
        self._advance(time)
        if not isinstance(target, Bin) or target not in self._bins:
            raise SimulationError(
                f"cannot fail bin {getattr(target, 'index', target)!r}: not an "
                "open bin of this simulation"
            )
        # The simulator only ever stores Arrival views in bins, so the
        # protocol-typed eviction list narrows back losslessly.
        evicted = cast("list[Arrival]", target.force_close(time))
        for view in evicted:
            del self._active[view.item_id]
            if self._record:
                if time <= view.arrival:
                    raise SimulationError(
                        f"bin {target.index} failed at {time}, not after item "
                        f"{view.item_id!r} arrived at {view.arrival}; recorded "
                        "simulations need strictly positive eviction intervals"
                    )
                self._finalized.append(
                    Item(
                        arrival=view.arrival,
                        departure=time,
                        size=view.size,
                        item_id=view.item_id,
                        tag=view.tag,
                    )
                )
        self._bins.discard(target)
        self._closed_bin_time = self._closed_bin_time + target.usage_length
        for view in evicted:
            self.algorithm.on_item_departed(view.item_id, target)
        for observer in self.observers:
            observer.on_server_failure(time, target, evicted)
        return evicted

    # ----------------------------------------------------------------- finish

    def finish(self) -> PackingResult:
        """Finalize the simulation and return the packing result.

        All items must have departed (every bin closed); an adaptive
        adversary is responsible for scheduling every departure.  Requires
        ``record=True`` (the default) — the O(active)-memory streaming mode
        keeps no history and offers :meth:`finish_summary` instead.

        ``result.items`` preserves *arrival issue order*, so replaying them
        through :func:`simulate` reproduces this packing exactly for any
        deterministic algorithm (same-instant arrivals keep their order) —
        the round-trip property the adversarial experiments rely on.
        """
        if not self._record:
            raise SimulationError(
                "finish() needs record=True; streaming simulations report via "
                "finish_summary()"
            )
        self._require_all_departed()

        def record_of(b: Bin) -> BinRecord:
            # All items departed, so every recorded bin has a complete life.
            assert b.opened_at is not None and b.closed_at is not None
            return BinRecord(
                index=b.index,
                label=b.label,
                opened_at=b.opened_at,
                closed_at=b.closed_at,
                assignments=tuple((a.time, a.item.item_id) for a in b.assignments),
                capacity=b.capacity,
            )

        records = tuple(record_of(b) for b in self._all_bins)
        # _assignment's insertion order is arrival issue order.
        issue_order = {item_id: i for i, item_id in enumerate(self._assignment)}
        finalized = sorted(self._finalized, key=lambda it: issue_order[it.item_id])
        return PackingResult(
            algorithm_name=self.algorithm.name,
            capacity=self.capacity,
            cost_rate=self.cost_rate,
            items=tuple(finalized),
            assignment=dict(self._assignment),
            bins=records,
        )

    def finish_summary(self) -> "StreamSummary":
        """Finalize and return aggregate statistics only (any ``record`` mode).

        The O(1)-sized counterpart of :meth:`finish` for streaming runs:
        total cost, bins opened, peak concurrency — everything that does not
        require per-item history.  All items must have departed.
        """
        from .streaming import StreamSummary

        self._require_all_departed()
        return StreamSummary(
            algorithm_name=self.algorithm.name,
            capacity=self.capacity,
            cost_rate=self.cost_rate,
            num_items=self._items_arrived,
            num_bins_used=self._bins_opened,
            peak_open_bins=self._peak_open,
            total_bin_time=self._closed_bin_time,
            total_cost=self.cost_rate * self._closed_bin_time,
            end_time=self._now,
        )

    def _require_all_departed(self) -> None:
        if self._active:
            leftover = sorted(self._active)[:5]
            raise SimulationError(
                f"{len(self._active)} items never departed (e.g. {leftover}); "
                "schedule departures for all items before finish()"
            )


def simulate(
    items: Iterable[Item],
    algorithm: PackingAlgorithm,
    *,
    capacity: Size = 1,
    cost_rate: Num = 1,
    strict: bool = True,
    check: bool = False,
    indexed: bool = True,
    observers: Sequence["SimulationObserver"] = (),
    max_bin_capacity: Size | None = None,
    repacker: "StreamRepacker | None" = None,
) -> PackingResult:
    """Replay a complete item list against an online packing algorithm.

    Events are ordered by time with departures before arrivals at equal
    times, and arrivals in trace order (see :mod:`repro.core.events`).

    Sequence inputs (lists, tuples, :class:`~repro.workloads.trace.Trace`)
    may be in any order; they are validated up front and merged lazily, so
    the full 2n event list is never materialized.  One-shot iterators
    (generators) are **streamed**: items must then arrive in non-decreasing
    arrival order and are validated on the fly, never held all at once.
    For O(active items) memory end to end — no PackingResult history —
    use :func:`repro.core.streaming.simulate_stream` instead.

    Parameters
    ----------
    check:
        When true, run :meth:`PackingResult.check_invariants` on the result
        before returning (useful in tests; costs an extra pass).
    indexed:
        When true (default), let the algorithm use the O(log n) indexed
        selection protocol if it implements one; false forces the classic
        list scan (the differential-test oracle).
    max_bin_capacity:
        For flavour-aware algorithms that open bins larger than the default
        ``capacity`` (see :meth:`PackingAlgorithm.new_bin_capacity`): the
        largest capacity the algorithm may request, used to validate item
        sizes up front.
    repacker:
        Optional bounded-migration repacker (see
        :class:`repro.core.streaming.StreamRepacker`): invoked after every
        event and may move active items between bins via
        :meth:`Simulator.migrate`.  Note ``check=True`` cannot be combined
        with a repacker that actually migrates —
        :meth:`PackingResult.check_invariants` assumes each item spent its
        whole life in one bin.

    Returns
    -------
    PackingResult

    Examples
    --------
    >>> from repro import FirstFit, make_items, simulate
    >>> items = make_items([(0, 10, 0.5), (0, 2, 0.5), (1, 3, 0.5)])
    >>> result = simulate(items, FirstFit())
    >>> result.num_bins_used
    2
    """
    cap_limit = capacity if max_bin_capacity is None else max_bin_capacity
    if isinstance(items, _Iterator):
        events = iter_events(_validated_stream(items, cap_limit))
    else:
        trace = validate_items(items, capacity=cap_limit)
        # Stable sort by arrival keeping trace positions as tiebreakers:
        # the lazy merge then reproduces compile_events() exactly without
        # building the event list.
        events = _merge_events(sorted(enumerate(trace), key=lambda p: p[1].arrival))
    sim = Simulator(
        algorithm,
        capacity=capacity,
        cost_rate=cost_rate,
        strict=strict,
        indexed=indexed,
        observers=observers,
    )
    if repacker is not None:
        repacker.reset()
    for event in events:
        if event.kind is EventKind.ARRIVAL:
            sim.arrive(
                event.item.arrival,
                event.item.size,
                item_id=event.item.item_id,
                tag=event.item.tag,
            )
            if repacker is not None:
                repacker.after_arrival(sim, event.item)
        else:
            sim.depart(event.item.item_id, event.item.departure)
            if repacker is not None:
                repacker.after_departure(sim, event.item.item_id)
    result = sim.finish()
    if check:
        result.check_invariants()
    return result


def _validated_stream(
    items: Iterable[Item], capacity: Size | None
) -> Iterable[Item]:
    """Per-item validation for streamed traces (duplicate ids are caught by
    the simulator against active/assigned items)."""
    for item in items:
        if capacity is not None:
            try:
                fits = size_fits(item.size, capacity)
            except TypeError:
                raise ResourceDimensionError(
                    dims_of(capacity), item.dims, item_id=item.item_id
                ) from None
            if not fits:
                raise OversizedItemError(
                    item.size,
                    capacity,
                    item_id=item.item_id,
                    dimension=oversize_dimension(item.size, capacity),
                )
        yield item
