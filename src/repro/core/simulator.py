"""The discrete-event MinTotal DBP simulator.

Two driving styles share one engine:

* :func:`simulate` replays a complete item list (a trace) against an
  algorithm — the common case for workloads and experiments.
* :class:`Simulator` is the incremental engine itself, which *adaptive
  adversaries* drive step by step: they submit arrivals, observe the
  resulting bin states, and only then decide departure times.  The paper's
  lower-bound constructions (Theorems 1 and 2) are adaptive in exactly this
  sense.

The engine is exact: bin costs are accumulated per usage period with no time
discretisation, simultaneous events are ordered departures-first (see
:mod:`repro.core.events`), and online-ness is enforced structurally — the
algorithm only ever sees :class:`~repro.algorithms.base.Arrival` views,
which carry no departure time.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..algorithms.base import OPEN_NEW, Arrival, PackingAlgorithm
from .bin import Bin
from .events import EventKind, compile_events
from .item import Item, validate_items
from .result import BinRecord, PackingResult

if False:  # pragma: no cover - import cycle guard for type checkers
    from .telemetry import SimulationObserver

__all__ = ["Simulator", "simulate", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for protocol violations (bad algorithm choice, time travel...)."""


@dataclass
class _ActiveItem:
    view: Arrival
    bin: Bin


class Simulator:
    """Incremental DBP engine.

    Parameters
    ----------
    algorithm:
        The online packing algorithm under test.
    capacity:
        Bin capacity ``W`` (default 1, as in the paper's proofs).
    cost_rate:
        Bin cost rate ``C`` (default 1).
    strict:
        When true (default), validate every algorithm decision: the chosen
        bin must be open and must fit the item.
    """

    def __init__(
        self,
        algorithm: PackingAlgorithm,
        *,
        capacity: numbers.Real = 1,
        cost_rate: numbers.Real = 1,
        strict: bool = True,
        observers: Sequence["SimulationObserver"] = (),
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if cost_rate <= 0:
            raise ValueError(f"cost rate must be positive, got {cost_rate}")
        self.algorithm = algorithm
        self.capacity = capacity
        self.cost_rate = cost_rate
        self.strict = strict
        self.observers = list(observers)
        self._open_bins: list[Bin] = []
        self._all_bins: list[Bin] = []
        self._active: dict[str, _ActiveItem] = {}
        self._finalized: list[Item] = []
        self._assignment: dict[str, int] = {}
        self._now: numbers.Real | None = None
        self._auto_id = 0
        algorithm.reset(capacity)

    # ------------------------------------------------------------- inspection

    @property
    def now(self) -> numbers.Real | None:
        """Time of the last processed event (``None`` before the first)."""
        return self._now

    @property
    def open_bins(self) -> list[Bin]:
        """Currently open bins in opening order (adversaries may inspect)."""
        return list(self._open_bins)

    @property
    def num_open_bins(self) -> int:
        return len(self._open_bins)

    @property
    def active_item_ids(self) -> list[str]:
        return list(self._active)

    def bin_of(self, item_id: str) -> Bin:
        """The bin currently holding an active item."""
        try:
            return self._active[item_id].bin
        except KeyError:
            raise KeyError(f"item {item_id!r} is not active") from None

    # ------------------------------------------------------------ transitions

    def _advance(self, time: numbers.Real) -> None:
        if self._now is not None and time < self._now:
            raise SimulationError(
                f"event at time {time} precedes current time {self._now}"
            )
        self._now = time

    def arrive(
        self,
        time: numbers.Real,
        size: numbers.Real,
        item_id: str | None = None,
        tag: Any = None,
    ) -> Bin:
        """Submit an arrival; returns the bin the algorithm placed it in."""
        self._advance(time)
        if size <= 0:
            raise ValueError(f"item size must be positive, got {size}")
        # Note: oversize vs the *default* capacity is checked at open time —
        # a flavour-aware algorithm may open a larger bin for this item.
        if item_id is None:
            item_id = f"r{self._auto_id}"
            self._auto_id += 1
        if item_id in self._active or item_id in self._assignment:
            raise SimulationError(f"duplicate item id {item_id!r}")

        view = Arrival(item_id=item_id, size=size, arrival=time, tag=tag)
        choice = self.algorithm.choose_bin(view, self._open_bins)
        if choice is OPEN_NEW or choice is None:
            new_capacity = self.algorithm.new_bin_capacity(view)
            if new_capacity is None:
                new_capacity = self.capacity
            if size > new_capacity:
                raise SimulationError(
                    f"item {item_id!r} of size {size} cannot fit the new bin of "
                    f"capacity {new_capacity} the algorithm requested"
                )
            target = Bin(index=len(self._all_bins), capacity=new_capacity)
            opened = True
        else:
            target = choice  # type: ignore[assignment]
            opened = False
            if self.strict:
                if not isinstance(target, Bin) or not target.is_open or target not in self._open_bins:
                    raise SimulationError(
                        f"algorithm {self.algorithm.name!r} returned an invalid bin for "
                        f"{item_id!r}: {choice!r}"
                    )
                if not target.fits(view):
                    raise SimulationError(
                        f"algorithm {self.algorithm.name!r} chose bin {target.index} "
                        f"(residual {target.residual}) for item of size {size}"
                    )
        target.add(view, time)
        if opened:
            self._open_bins.append(target)
            self._all_bins.append(target)
            self.algorithm.on_bin_opened(target, view)
        self._active[item_id] = _ActiveItem(view=view, bin=target)
        self._assignment[item_id] = target.index
        for observer in self.observers:
            observer.on_arrival(time, view, target, opened)
        return target

    def depart(self, item_id: str, time: numbers.Real) -> Bin:
        """Remove an active item at ``time``; returns its (possibly closed) bin."""
        self._advance(time)
        try:
            record = self._active.pop(item_id)
        except KeyError:
            raise SimulationError(f"cannot depart unknown/inactive item {item_id!r}") from None
        view, target = record.view, record.bin
        if time <= view.arrival:
            raise SimulationError(
                f"item {item_id!r} would depart at {time}, not after its arrival {view.arrival}"
            )
        target.remove(item_id, time)
        if target.is_closed:
            self._open_bins.remove(target)
        self.algorithm.on_item_departed(item_id, target)
        for observer in self.observers:
            observer.on_departure(time, item_id, target, target.is_closed)
        self._finalized.append(
            Item(
                arrival=view.arrival,
                departure=time,
                size=view.size,
                item_id=item_id,
                tag=view.tag,
            )
        )
        return target

    # ----------------------------------------------------------------- finish

    def finish(self) -> PackingResult:
        """Finalize the simulation and return the packing result.

        All items must have departed (every bin closed); an adaptive
        adversary is responsible for scheduling every departure.

        ``result.items`` preserves *arrival issue order*, so replaying them
        through :func:`simulate` reproduces this packing exactly for any
        deterministic algorithm (same-instant arrivals keep their order) —
        the round-trip property the adversarial experiments rely on.
        """
        if self._active:
            leftover = sorted(self._active)[:5]
            raise SimulationError(
                f"{len(self._active)} items never departed (e.g. {leftover}); "
                "schedule departures for all items before finish()"
            )
        records = tuple(
            BinRecord(
                index=b.index,
                label=b.label,
                opened_at=b.opened_at,
                closed_at=b.closed_at,
                assignments=tuple((a.time, a.item.item_id) for a in b.assignments),
                capacity=b.capacity,
            )
            for b in self._all_bins
        )
        # _assignment's insertion order is arrival issue order.
        issue_order = {item_id: i for i, item_id in enumerate(self._assignment)}
        finalized = sorted(self._finalized, key=lambda it: issue_order[it.item_id])
        return PackingResult(
            algorithm_name=self.algorithm.name,
            capacity=self.capacity,
            cost_rate=self.cost_rate,
            items=tuple(finalized),
            assignment=dict(self._assignment),
            bins=records,
        )


def simulate(
    items: Iterable[Item],
    algorithm: PackingAlgorithm,
    *,
    capacity: numbers.Real = 1,
    cost_rate: numbers.Real = 1,
    strict: bool = True,
    check: bool = False,
    observers: Sequence["SimulationObserver"] = (),
    max_bin_capacity: numbers.Real | None = None,
) -> PackingResult:
    """Replay a complete item list against an online packing algorithm.

    Events are ordered by time with departures before arrivals at equal
    times, and arrivals in trace order (see :mod:`repro.core.events`).

    Parameters
    ----------
    check:
        When true, run :meth:`PackingResult.check_invariants` on the result
        before returning (useful in tests; costs an extra pass).
    max_bin_capacity:
        For flavour-aware algorithms that open bins larger than the default
        ``capacity`` (see :meth:`PackingAlgorithm.new_bin_capacity`): the
        largest capacity the algorithm may request, used to validate item
        sizes up front.

    Returns
    -------
    PackingResult

    Examples
    --------
    >>> from repro import FirstFit, make_items, simulate
    >>> items = make_items([(0, 10, 0.5), (0, 2, 0.5), (1, 3, 0.5)])
    >>> result = simulate(items, FirstFit())
    >>> result.num_bins_used
    2
    """
    trace = validate_items(
        items, capacity=capacity if max_bin_capacity is None else max_bin_capacity
    )
    sim = Simulator(
        algorithm,
        capacity=capacity,
        cost_rate=cost_rate,
        strict=strict,
        observers=observers,
    )
    for event in compile_events(trace):
        if event.kind is EventKind.ARRIVAL:
            sim.arrive(
                event.item.arrival,
                event.item.size,
                item_id=event.item.item_id,
                tag=event.item.tag,
            )
        else:
            sim.depart(event.item.item_id, event.item.departure)
    result = sim.finish()
    if check:
        result.check_invariants()
    return result
