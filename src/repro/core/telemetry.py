"""Observer hooks and live telemetry for the simulator.

Production dispatchers want running statistics without post-processing a
finished :class:`~repro.core.result.PackingResult`.  An observer receives a
callback at every placement, departure, bin opening and bin closing; the
bundled :class:`TelemetryCollector` maintains the open-bin/active-item time
series, running cost, and peak statistics incrementally, and is verified
against the post-hoc result in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from .numeric import Num

if TYPE_CHECKING:  # pragma: no cover
    from ..algorithms.base import Arrival
    from .bin import Bin

__all__ = ["SimulationObserver", "TelemetryCollector"]


class SimulationObserver:
    """Base observer: override any subset of the hooks."""

    def on_arrival(self, time: Num, item: "Arrival", bin: "Bin", opened: bool) -> None:
        """Item placed into ``bin``; ``opened`` if the bin is brand new."""

    def on_departure(self, time: Num, item_id: str, bin: "Bin", closed: bool) -> None:
        """Item left ``bin``; ``closed`` if the bin emptied and closed."""

    def on_server_failure(
        self, time: Num, bin: "Bin", evicted: Sequence["Arrival"]
    ) -> None:
        """``bin`` was revoked at ``time`` (server failure), evicting items.

        Fires instead of per-item ``on_departure`` calls: the bin closes in
        one stroke with ``evicted`` still inside.  Billing observers must
        settle the bin's rental here — the usual ``closed=True`` departure
        never happens for a failed server.
        """

    def on_migration(
        self,
        time: Num,
        item: "Arrival",
        from_bin: "Bin",
        to_bin: "Bin",
        from_closed: bool,
        to_opened: bool,
    ) -> None:
        """``item`` moved from ``from_bin`` to ``to_bin`` at ``time``.

        Fired by :meth:`~repro.core.simulator.Simulator.migrate` (the
        bounded-migration dispatch mode).  ``from_closed`` marks a source
        bin that emptied and closed with the move — billing observers must
        settle its rental here, exactly as for a ``closed=True`` departure;
        ``to_opened`` marks a brand-new destination bin.
        """

    def checkpoint_state(self) -> Any:
        """JSON-serializable snapshot of this observer's state (or ``None``).

        Observers that accumulate state (billing meters, telemetry) override
        this together with :meth:`restore_state` so streamed runs can
        checkpoint and resume exactly (see :mod:`repro.core.checkpoint`).
        The default returns ``None`` — nothing to save.
        """
        return None

    def restore_state(self, state: Any) -> None:
        """Restore the state captured by :meth:`checkpoint_state`."""


@dataclass
class TelemetryCollector(SimulationObserver):
    """Running statistics maintained event by event.

    ``accrued_cost(now)`` is exact at any instant: closed bins contribute
    their full usage, open bins their usage so far.
    """

    cost_rate: Num = 1

    num_arrivals: int = 0
    num_departures: int = 0
    bins_opened: int = 0
    bins_closed: int = 0
    #: Bins revoked mid-run by server failures (disjoint from bins_closed).
    servers_failed: int = 0
    #: Active sessions evicted by those failures.
    sessions_evicted: int = 0
    #: Sessions moved between bins by a bounded-migration repacker.
    migrations: int = 0
    open_bins: int = 0
    active_items: int = 0
    peak_open_bins: int = 0
    peak_active_items: int = 0
    #: (time, open-bin count) breakpoints, appended when the count changes.
    open_bins_series: list[tuple[Num, int]] = field(default_factory=list)
    _closed_bin_time: Num = 0
    _open_since: dict[int, Num] = field(default_factory=dict)

    # ------------------------------------------------------------------ hooks

    def on_arrival(self, time: Num, item: "Arrival", bin: "Bin", opened: bool) -> None:
        self.num_arrivals += 1
        self.active_items += 1
        self.peak_active_items = max(self.peak_active_items, self.active_items)
        if opened:
            self.bins_opened += 1
            self.open_bins += 1
            self.peak_open_bins = max(self.peak_open_bins, self.open_bins)
            self._open_since[bin.index] = time
            self._record(time)

    def on_departure(self, time: Num, item_id: str, bin: "Bin", closed: bool) -> None:
        self.num_departures += 1
        self.active_items -= 1
        if closed:
            self.bins_closed += 1
            self.open_bins -= 1
            opened_at = self._open_since.pop(bin.index)
            self._closed_bin_time = self._closed_bin_time + (time - opened_at)
            self._record(time)

    def on_server_failure(
        self, time: Num, bin: "Bin", evicted: Sequence["Arrival"]
    ) -> None:
        self.servers_failed += 1
        self.sessions_evicted += len(evicted)
        self.active_items -= len(evicted)
        self.open_bins -= 1
        opened_at = self._open_since.pop(bin.index)
        self._closed_bin_time = self._closed_bin_time + (time - opened_at)
        self._record(time)

    def on_migration(
        self,
        time: Num,
        item: "Arrival",
        from_bin: "Bin",
        to_bin: "Bin",
        from_closed: bool,
        to_opened: bool,
    ) -> None:
        self.migrations += 1
        if to_opened:
            self.bins_opened += 1
            self.open_bins += 1
            self.peak_open_bins = max(self.peak_open_bins, self.open_bins)
            self._open_since[to_bin.index] = time
        if from_closed:
            self.bins_closed += 1
            self.open_bins -= 1
            opened_at = self._open_since.pop(from_bin.index)
            self._closed_bin_time = self._closed_bin_time + (time - opened_at)
        if to_opened or from_closed:
            self._record(time)

    def _record(self, time: Num) -> None:
        self.open_bins_series.append((time, self.open_bins))

    # ----------------------------------------------------------- checkpointing

    def checkpoint_state(self) -> dict[str, Any]:
        return {
            "num_arrivals": self.num_arrivals,
            "num_departures": self.num_departures,
            "bins_opened": self.bins_opened,
            "bins_closed": self.bins_closed,
            "servers_failed": self.servers_failed,
            "sessions_evicted": self.sessions_evicted,
            "migrations": self.migrations,
            "open_bins": self.open_bins,
            "active_items": self.active_items,
            "peak_open_bins": self.peak_open_bins,
            "peak_active_items": self.peak_active_items,
            "open_bins_series": [list(p) for p in self.open_bins_series],
            "closed_bin_time": self._closed_bin_time,
            "open_since": {str(k): v for k, v in self._open_since.items()},
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        for name in (
            "num_arrivals",
            "num_departures",
            "bins_opened",
            "bins_closed",
            "servers_failed",
            "sessions_evicted",
            "open_bins",
            "active_items",
            "peak_open_bins",
            "peak_active_items",
        ):
            setattr(self, name, state[name])
        self.migrations = state.get("migrations", 0)
        self.open_bins_series = [(p[0], p[1]) for p in state["open_bins_series"]]
        self._closed_bin_time = state["closed_bin_time"]
        self._open_since = {int(k): v for k, v in state["open_since"].items()}

    # ---------------------------------------------------------------- queries

    def accrued_cost(self, now: Num) -> Num:
        """Exact cost accrued up to ``now`` (open bins billed to ``now``)."""
        running: Num = 0
        for opened_at in self._open_since.values():
            running = running + (now - opened_at)
        return (self._closed_bin_time + running) * self.cost_rate

    @property
    def completed_sessions(self) -> int:
        return self.num_departures
