"""Multi-resource demand vectors and scalarisation helpers.

The source paper models a session as a scalar GPU demand; its successors
(Murhekar et al., arXiv 2304.08648) show cloud placement is
multi-resource: GPU, CPU, memory, bandwidth.  :class:`Resources` is the
engine's demand vector — immutable, slots-based, exact-arithmetic
friendly (components may be ``int``/``float``/``Fraction``), with
elementwise ``+``/``-`` and the *dominance* partial order
``a <= b  iff  a_d <= b_d for every dimension d``.

Scalar sizes remain the 1-D special case: every helper in this module
accepts a plain ``Num`` and degenerates to the familiar scalar
comparison, which is what lets the differential suite assert that 1-D
vector runs are byte-identical to the scalar engine.

Because dominance is *partial*, ``a > b`` is **not** the negation of
``a <= b`` — incomparable vectors answer ``False`` to both.  Engine code
must therefore never order-compare sizes directly (lint rule DBP010);
it routes through :func:`size_fits` / :meth:`Bin.fits` for feasibility
and through the scalarisations below for ranking.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence, Union

from .numeric import NUM_TYPES, Num

__all__ = [
    "Resources",
    "Size",
    "dims_of",
    "size_fits",
    "is_valid_size",
    "is_valid_capacity",
    "meets_threshold",
    "exceeds_threshold",
    "oversize_dimension",
    "elementwise_min",
    "elementwise_max",
    "scalarize_max",
    "scalarize_sum",
    "make_weighted_scalarization",
    "get_scalarization",
]


class Resources:
    """An immutable vector of per-dimension resource quantities.

    Construct from positional components (``Resources(2, 4)``) or a single
    iterable (``Resources([2, 4])``).  Components are ``Num`` scalars;
    ``Fraction`` components keep arithmetic exact end to end, so the
    adversarial constructions work unchanged in higher dimensions.

    Supported algebra:

    * elementwise ``+`` / ``-`` against another :class:`Resources` of the
      same dimension, or against a scalar (broadcast) — broadcasting is
      what lets ``Bin`` keep ``level = 0`` as its empty state;
    * scalar ``*`` / ``/``;
    * dominance comparisons: ``a <= b`` iff every component of ``a`` is at
      most the matching component of ``b``; ``<`` additionally requires
      ``a != b``.  Incomparable vectors are ``False`` both ways.
    """

    __slots__ = ("_values",)

    _values: tuple[Num, ...]

    def __init__(self, *values: Num | Sequence[Num]) -> None:
        if len(values) == 1 and not isinstance(values[0], NUM_TYPES):
            candidate = values[0]
            try:
                values = tuple(candidate)  # type: ignore[arg-type]
            except TypeError:
                raise TypeError(
                    f"Resources components must be numbers, got {candidate!r}"
                ) from None
        if not values:
            raise ValueError("Resources needs at least one dimension")
        for v in values:
            if not isinstance(v, NUM_TYPES):
                raise TypeError(f"Resources components must be numbers, got {v!r}")
            if v != v:  # NaN
                raise ValueError("Resources components must not be NaN")
        object.__setattr__(self, "_values", tuple(values))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Resources is immutable")

    # The immutability guard blocks the slot-writing fallback copy/pickle
    # would otherwise use; reconstruct through __init__ instead (components
    # are immutable scalars, so shallow/deep copies may share them).
    def __reduce__(self) -> tuple["type[Resources]", tuple[Num, ...]]:
        return (Resources, self._values)

    def __copy__(self) -> "Resources":
        return self

    def __deepcopy__(self, memo: object) -> "Resources":
        return self

    # -- construction helpers ------------------------------------------------

    @classmethod
    def uniform(cls, value: Num, dims: int) -> "Resources":
        """The vector with ``value`` in every one of ``dims`` dimensions.

        This is the scalar-capacity broadcast rule: a scalar bin capacity
        ``W`` in a ``d``-dimensional run means "capacity ``W`` in every
        dimension".
        """
        if dims < 1:
            raise ValueError(f"dims must be positive, got {dims}")
        return cls(*([value] * dims))

    @classmethod
    def zeros(cls, dims: int) -> "Resources":
        return cls.uniform(0, dims)

    # -- basic protocol ------------------------------------------------------

    @property
    def values(self) -> tuple[Num, ...]:
        return self._values

    @property
    def dims(self) -> int:
        return len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Num]:
        return iter(self._values)

    def __getitem__(self, d: int) -> Num:
        return self._values[d]

    def __repr__(self) -> str:
        return f"Resources({', '.join(repr(v) for v in self._values)})"

    def __str__(self) -> str:
        return f"({', '.join(str(v) for v in self._values)})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Resources):
            return self._values == other._values
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __bool__(self) -> bool:
        return any(self._values)

    # -- arithmetic ----------------------------------------------------------

    def _coerce(self, other: object) -> tuple[Num, ...] | None:
        if isinstance(other, Resources):
            if other.dims != self.dims:
                raise ValueError(
                    f"dimension mismatch: {self.dims}-D vs {other.dims}-D"
                )
            return other._values
        if isinstance(other, NUM_TYPES):
            return (other,) * self.dims
        return None

    def __add__(self, other: object) -> "Resources":
        vals = self._coerce(other)
        if vals is None:
            return NotImplemented
        return Resources(*(a + b for a, b in zip(self._values, vals)))

    __radd__ = __add__

    def __sub__(self, other: object) -> "Resources":
        vals = self._coerce(other)
        if vals is None:
            return NotImplemented
        return Resources(*(a - b for a, b in zip(self._values, vals)))

    def __rsub__(self, other: object) -> "Resources":
        vals = self._coerce(other)
        if vals is None:
            return NotImplemented
        return Resources(*(b - a for a, b in zip(self._values, vals)))

    def __mul__(self, other: object) -> "Resources":
        if not isinstance(other, NUM_TYPES):
            return NotImplemented
        return Resources(*(v * other for v in self._values))

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "Resources":
        if not isinstance(other, NUM_TYPES):
            return NotImplemented
        return Resources(*(v / other for v in self._values))

    # -- dominance order -----------------------------------------------------

    def __le__(self, other: object) -> bool:
        vals = self._coerce(other)
        if vals is None:
            return NotImplemented
        return all(a <= b for a, b in zip(self._values, vals))

    def __ge__(self, other: object) -> bool:
        vals = self._coerce(other)
        if vals is None:
            return NotImplemented
        return all(a >= b for a, b in zip(self._values, vals))

    def __lt__(self, other: object) -> bool:
        vals = self._coerce(other)
        if vals is None:
            return NotImplemented
        return self._values != vals and all(
            a <= b for a, b in zip(self._values, vals)
        )

    def __gt__(self, other: object) -> bool:
        vals = self._coerce(other)
        if vals is None:
            return NotImplemented
        return self._values != vals and all(
            a >= b for a, b in zip(self._values, vals)
        )

    # -- scalarisation views -------------------------------------------------

    def as_scalar(self) -> Num:
        """The single component of a 1-D vector.

        Raises ``ValueError`` in higher dimensions; this is the bridge the
        differential suite uses to compare 1-D vector runs against the
        scalar engine bit for bit.
        """
        if len(self._values) != 1:
            raise ValueError(
                f"as_scalar() needs a 1-D vector, got {self.dims} dimensions"
            )
        return self._values[0]

    def max_component(self) -> Num:
        return max(self._values)

    def min_component(self) -> Num:
        return min(self._values)

    def sum_components(self) -> Num:
        total: Num = self._values[0]
        for v in self._values[1:]:
            total = total + v
        return total

    def dot(self, weights: Sequence[Num]) -> Num:
        if len(weights) != self.dims:
            raise ValueError(
                f"need {self.dims} weights, got {len(weights)}"
            )
        total: Num = self._values[0] * weights[0]
        for v, w in zip(self._values[1:], weights[1:]):
            total = total + v * w
        return total


#: A demand or capacity: scalar in 1-D traces, :class:`Resources` otherwise.
Size = Union[Num, Resources]


def dims_of(size: Size) -> int | None:
    """Dimension count of a size: ``None`` for scalars, ``dims`` for vectors."""
    return size.dims if isinstance(size, Resources) else None


def size_fits(size: Size, capacity: Size) -> bool:
    """Whether ``size`` fits inside ``capacity`` under dominance.

    Scalar/scalar is the plain ``size <= capacity``; vector/vector is
    dominance (every dimension fits); a vector size against a scalar
    capacity broadcasts the capacity to every dimension.  A *scalar* size
    against a *vector* capacity is a modelling error (which dimension does
    the scalar occupy?) and raises ``TypeError``.
    """
    if isinstance(size, Resources):
        return size <= capacity
    if isinstance(capacity, Resources):
        raise TypeError(
            f"scalar size {size!r} cannot be checked against vector "
            f"capacity {capacity!r}; use Resources sizes in vector runs"
        )
    return size <= capacity


def oversize_dimension(size: Size, capacity: Size) -> int | None:
    """First dimension where a vector ``size`` exceeds ``capacity``.

    ``None`` when the size fits — and always for scalar sizes, so scalar
    oversize errors keep their historical one-line message.
    """
    if isinstance(size, Resources):
        caps = (
            capacity.values
            if isinstance(capacity, Resources)
            else (capacity,) * size.dims
        )
        for d, (s, c) in enumerate(zip(size.values, caps)):
            if not s <= c:
                return d
        return None
    return None


def is_valid_size(size: object) -> bool:
    """Whether ``size`` is a legal item demand.

    Scalars must be strictly positive (NaN is rejected because ``NaN > 0``
    is false); vectors must be non-negative in every dimension and
    positive in at least one — a session may demand zero bandwidth, but a
    session demanding nothing at all is a trace bug.
    """
    if isinstance(size, Resources):
        return all(v >= 0 for v in size.values) and any(v > 0 for v in size.values)
    if isinstance(size, NUM_TYPES):
        return size > 0
    return False


def is_valid_capacity(capacity: object) -> bool:
    """Whether ``capacity`` is a legal bin capacity (positive everywhere)."""
    if isinstance(capacity, Resources):
        return all(v > 0 for v in capacity.values)
    if isinstance(capacity, NUM_TYPES):
        return capacity > 0
    return False


def meets_threshold(size: Size, threshold: Size) -> bool:
    """Whether ``size`` reaches ``threshold`` in *some* dimension (``>=``).

    This is the vector generalisation of the Modified-Any-Fit LARGE test:
    an item is LARGE when any single dimension consumes at least ``W_d/k``
    of its bin — one heavy dimension is enough to make the item worth a
    dedicated bin.  Scalar inputs degenerate to ``size >= threshold``.
    """
    if isinstance(size, Resources):
        thresholds = (
            threshold.values
            if isinstance(threshold, Resources)
            else (threshold,) * size.dims
        )
        return any(s >= t for s, t in zip(size.values, thresholds))
    if isinstance(threshold, Resources):
        raise TypeError(
            f"scalar size {size!r} has no dimensions to test against "
            f"vector threshold {threshold!r}"
        )
    return size >= threshold


def exceeds_threshold(size: Size, threshold: Size) -> bool:
    """Strict variant of :func:`meets_threshold` (``>`` in some dimension)."""
    if isinstance(size, Resources):
        thresholds = (
            threshold.values
            if isinstance(threshold, Resources)
            else (threshold,) * size.dims
        )
        return any(s > t for s, t in zip(size.values, thresholds))
    if isinstance(threshold, Resources):
        raise TypeError(
            f"scalar size {size!r} has no dimensions to test against "
            f"vector threshold {threshold!r}"
        )
    return size > threshold


def elementwise_min(a: Size, b: Size) -> Size:
    """Componentwise minimum (plain ``min`` for scalars)."""
    if isinstance(a, Resources) or isinstance(b, Resources):
        if not (isinstance(a, Resources) and isinstance(b, Resources)):
            raise TypeError(f"cannot mix scalar and vector sizes: {a!r}, {b!r}")
        if a.dims != b.dims:
            raise ValueError(f"dimension mismatch: {a.dims}-D vs {b.dims}-D")
        return Resources(*(min(x, y) for x, y in zip(a.values, b.values)))
    return min(a, b)


def elementwise_max(a: Size, b: Size) -> Size:
    """Componentwise maximum (plain ``max`` for scalars)."""
    if isinstance(a, Resources) or isinstance(b, Resources):
        if not (isinstance(a, Resources) and isinstance(b, Resources)):
            raise TypeError(f"cannot mix scalar and vector sizes: {a!r}, {b!r}")
        if a.dims != b.dims:
            raise ValueError(f"dimension mismatch: {a.dims}-D vs {b.dims}-D")
        return Resources(*(max(x, y) for x, y in zip(a.values, b.values)))
    return max(a, b)


# -- scalarisations ----------------------------------------------------------
#
# A scalarisation maps a (possibly vector) size to a single Num used for
# *ranking* (Best Fit tightness, flavour ordering).  The property tests
# assert the two built-ins are monotone under dominance: a <= b implies
# scal(a) <= scal(b), which is what makes Best-Fit-by-scalarisation a
# well-defined generalisation of scalar Best Fit.


def scalarize_max(size: Size) -> Num:
    """Max-dimension (L∞) scalarisation; identity on scalars.

    The canonical ranking: it is exactly the scalar residual in 1-D, which
    is why the vector Best-Fit index keys on it.
    """
    if isinstance(size, Resources):
        return size.max_component()
    return size


def scalarize_sum(size: Size) -> Num:
    """Sum-of-dimensions (L1) scalarisation; identity on scalars."""
    if isinstance(size, Resources):
        return size.sum_components()
    return size


def make_weighted_scalarization(weights: Sequence[Num]) -> Callable[[Size], Num]:
    """A weighted-sum scalarisation ``size ↦ Σ_d w_d · size_d``.

    Weights must be non-negative with at least one positive entry so the
    result stays monotone under dominance.  Scalars are treated as 1-D
    (only ``weights[0]`` applies).
    """
    ws = tuple(weights)
    if not ws or any(w < 0 for w in ws) or not any(w > 0 for w in ws):
        raise ValueError(
            f"weights must be non-negative with a positive entry, got {ws!r}"
        )

    def scalarize_weighted(size: Size) -> Num:
        if isinstance(size, Resources):
            return size.dot(ws)
        return size * ws[0]

    return scalarize_weighted


_NAMED_SCALARIZATIONS: dict[str, Callable[[Size], Num]] = {
    "max": scalarize_max,
    "sum": scalarize_sum,
}


def get_scalarization(
    spec: str | Callable[[Size], Num],
    *,
    weights: Sequence[Num] | None = None,
) -> Callable[[Size], Num]:
    """Resolve a scalarisation from a name, weights, or a callable.

    ``"max"`` and ``"sum"`` are built in; ``"weighted"`` requires
    ``weights``; a callable passes through unchanged.
    """
    if callable(spec):
        return spec
    if spec == "weighted":
        if weights is None:
            raise ValueError('scalarization "weighted" requires weights')
        return make_weighted_scalarization(weights)
    if weights is not None:
        raise ValueError(f"weights only apply to 'weighted', not {spec!r}")
    try:
        return _NAMED_SCALARIZATIONS[spec]
    except KeyError:
        raise ValueError(
            f"unknown scalarization {spec!r}; "
            f"options: {sorted(_NAMED_SCALARIZATIONS)} or 'weighted'"
        ) from None
