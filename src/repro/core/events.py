"""Event machinery for the discrete-event DBP simulator.

A trace of items is compiled into a totally ordered event sequence.  Ties at
a single time instant are resolved **departures first, then arrivals**, with
arrivals kept in trace order.  This matches the paper's adversarial
constructions, where items departing at time ``t`` free capacity that
same-instant arrivals may use, and the sequential "groups arrive one after
another" orderings are expressed by trace order at equal times.
"""

from __future__ import annotations

import enum
import numbers
from dataclasses import dataclass
from typing import Iterable

from .item import Item

__all__ = ["EventKind", "Event", "compile_events", "event_times"]


class EventKind(enum.IntEnum):
    """Event kinds; the integer values encode the same-time ordering."""

    DEPARTURE = 0
    ARRIVAL = 1


@dataclass(frozen=True, slots=True)
class Event:
    """A single arrival or departure event."""

    time: numbers.Real
    kind: EventKind
    item: Item
    seq: int  # stable tiebreaker: trace position of the item

    @property
    def sort_key(self) -> tuple:
        return (self.time, int(self.kind), self.seq)


def compile_events(items: Iterable[Item]) -> list[Event]:
    """Compile items into the sorted event sequence.

    Each item contributes one ARRIVAL at ``a(r)`` and one DEPARTURE at
    ``d(r)``.  The result is sorted by ``(time, kind, trace order)`` with
    DEPARTURE < ARRIVAL, so simultaneous departures are processed before
    simultaneous arrivals.
    """
    events: list[Event] = []
    for seq, item in enumerate(items):
        events.append(Event(time=item.arrival, kind=EventKind.ARRIVAL, item=item, seq=seq))
        events.append(Event(time=item.departure, kind=EventKind.DEPARTURE, item=item, seq=seq))
    events.sort(key=lambda e: e.sort_key)
    return events


def event_times(items: Iterable[Item]) -> list[numbers.Real]:
    """Sorted, de-duplicated list of all event times of a trace."""
    times = {it.arrival for it in items} | {it.departure for it in items}
    return sorted(times)
