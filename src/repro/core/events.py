"""Event machinery for the discrete-event DBP simulator.

A trace of items is turned into a totally ordered event sequence.  Ties at
a single time instant are resolved **departures first, then arrivals**, with
arrivals kept in trace order.  This matches the paper's adversarial
constructions, where items departing at time ``t`` free capacity that
same-instant arrivals may use, and the sequential "groups arrive one after
another" orderings are expressed by trace order at equal times.

Two entry points share one merge core:

* :func:`iter_events` is a **lazy heap-merge generator**: it consumes any
  item iterable whose arrivals are non-decreasing (generators included) and
  yields events one at a time, holding only the departure heap of currently
  active items in memory — O(active) space instead of O(trace).
* :func:`compile_events` is the materializing compatibility wrapper: it
  accepts items in any order, stable-sorts them by arrival and returns the
  full event list, byte-identical to the historical eager implementation.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator

from .numeric import Num
from .item import Item
from .validation import TraceValidationError

__all__ = [
    "EventKind",
    "Event",
    "EventOrderError",
    "iter_events",
    "compile_events",
    "event_times",
]


class EventOrderError(TraceValidationError):
    """Raised by :func:`iter_events` when arrivals are not non-decreasing."""


class EventKind(enum.IntEnum):
    """Event kinds; the integer values encode the same-time ordering."""

    DEPARTURE = 0
    ARRIVAL = 1


@dataclass(frozen=True, slots=True)
class Event:
    """A single arrival or departure event."""

    time: Num
    kind: EventKind
    item: Item
    seq: int  # stable tiebreaker: trace position of the item

    @property
    def sort_key(self) -> tuple:
        return (self.time, int(self.kind), self.seq)


def _merge_events(seq_items: Iterable[tuple[int, Item]]) -> Iterator[Event]:
    """Heap-merge ``(seq, item)`` pairs (non-decreasing arrivals) into events.

    Equivalent to sorting all 2n events by ``(time, kind, seq)``: before an
    arrival at time ``t`` is emitted, every pending departure with time
    ``<= t`` is drained from the heap in ``(time, seq)`` order.  Departures
    always belong to already-consumed items because ``d(r) > a(r)`` and the
    input is sorted by arrival, so the merge never has to look ahead.
    """
    pending: list[tuple[Num, int, Item]] = []  # (departure, seq, item)
    last_arrival: Num | None = None
    for seq, item in seq_items:
        if last_arrival is not None and item.arrival < last_arrival:
            raise EventOrderError(
                f"item {item.item_id!r} arrives at {item.arrival}, before the "
                f"previous arrival at {last_arrival}; iter_events requires "
                "non-decreasing arrival times — sort the trace or use "
                "compile_events()",
                item_id=item.item_id,
            )
        last_arrival = item.arrival
        while pending and pending[0][0] <= item.arrival:
            time, dep_seq, departed = heapq.heappop(pending)
            yield Event(time=time, kind=EventKind.DEPARTURE, item=departed, seq=dep_seq)
        yield Event(time=item.arrival, kind=EventKind.ARRIVAL, item=item, seq=seq)
        heapq.heappush(pending, (item.departure, seq, item))
    while pending:
        time, dep_seq, departed = heapq.heappop(pending)
        yield Event(time=time, kind=EventKind.DEPARTURE, item=departed, seq=dep_seq)


def iter_events(items: Iterable[Item]) -> Iterator[Event]:
    """Lazily merge items (sorted by arrival) into the event stream.

    Accepts any iterable — including one-shot generators — whose arrival
    times are non-decreasing, and yields :class:`Event` objects in
    ``(time, kind, trace order)`` order with DEPARTURE < ARRIVAL, holding
    only the active items' departures in a heap (O(active) memory).  Raises
    :class:`EventOrderError` on an out-of-order arrival; unsorted traces
    must go through :func:`compile_events` instead.
    """
    return _merge_events(enumerate(items))


def compile_events(items: Iterable[Item]) -> list[Event]:
    """Compile items into the sorted event sequence.

    Each item contributes one ARRIVAL at ``a(r)`` and one DEPARTURE at
    ``d(r)``.  The result is sorted by ``(time, kind, trace order)`` with
    DEPARTURE < ARRIVAL, so simultaneous departures are processed before
    simultaneous arrivals.

    Compatibility wrapper over the lazy merge: items are stable-sorted by
    arrival (keeping their original trace positions as tiebreakers), which
    reproduces the historical fully-materialized ordering exactly.  Code
    that can guarantee sorted arrivals should prefer :func:`iter_events`.
    """
    ordered = sorted(enumerate(items), key=lambda pair: pair[1].arrival)
    return list(_merge_events(ordered))


def event_times(items: Iterable[Item]) -> list[Num]:
    """Sorted, de-duplicated list of all event times of a trace."""
    times = {it.arrival for it in items} | {it.departure for it in items}
    return sorted(times)
