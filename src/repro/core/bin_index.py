"""Indexed open-bin state: O(1) membership, O(log n) fit queries.

The seed engine kept open bins in a plain list, so every First Fit arrival
scanned all open bins and every departure paid an O(n) ``list.remove`` —
quadratic end-to-end.  :class:`OpenBinIndex` replaces the list with a
slot-map keyed by ``bin.index`` plus, per bin label, two ordered views
maintained on every add/remove/update:

* a **max-residual segment tree** over opening-order slots, answering
  "lowest-index open bin with residual >= s" (the First Fit query) by a
  single root-to-leaf descent, and
* a **sorted residual list** answering "smallest residual >= s, earliest
  opened on ties" (the Best Fit query) by binary search.

Bins are pooled by the ``bin.label`` they carry when registered (Modified
First/Best Fit segregate large- and small-item bins this way); queries
either target one pool or combine all pools.  Labels must not change after
a bin is indexed.

:class:`OpenBinView` is the immutable sequence facade the simulator hands
to list-scanning algorithms and exposes as ``Simulator.open_bins`` —
iteration is in opening order and costs nothing extra; positional indexing
is supported for compatibility but is O(n).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections.abc import Sequence
from itertools import islice
from typing import Any, Iterator, overload

from .numeric import Num
from .bin import Bin

__all__ = ["ANY_LABEL", "OpenBinIndex", "OpenBinView"]

#: Residual stored for dead (closed) slots — compares below every item size.
_CLOSED = float("-inf")


class _AnyLabel:
    """Sentinel for fit queries spanning every label pool."""

    _instance: "_AnyLabel | None" = None

    def __new__(cls) -> "_AnyLabel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "ANY_LABEL"


ANY_LABEL = _AnyLabel()


class _Pool:
    """Fit indexes for the open bins sharing one label."""

    __slots__ = ("cap", "n_slots", "tree", "slots", "slot_of", "by_residual", "entry")

    def __init__(self) -> None:
        self.cap = 1  # leaf capacity of the segment tree (power of two)
        self.n_slots = 0  # slots ever allocated, including dead ones
        self.tree: list[Num] = [_CLOSED, _CLOSED]  # 1-based max tree, leaves at cap+i
        self.slots: list[Bin | None] = [None]
        self.slot_of: dict[int, int] = {}  # bin.index -> slot
        self.by_residual: list[tuple[Num, int]] = []  # sorted (residual, bin.index)
        self.entry: dict[int, tuple[Num, int]] = {}  # bin.index -> its by_residual key

    def __len__(self) -> int:
        return len(self.slot_of)

    # ------------------------------------------------------------- mutation

    def add(self, bin: Bin) -> None:
        if self.n_slots == self.cap:
            self._grow()
        slot = self.n_slots
        self.n_slots += 1
        self.slots[slot] = bin
        self.slot_of[bin.index] = slot
        self._tree_set(slot, bin.residual)
        key = (bin.residual, bin.index)
        insort(self.by_residual, key)
        self.entry[bin.index] = key

    def discard(self, bin: Bin) -> None:
        slot = self.slot_of.pop(bin.index)
        self.slots[slot] = None
        self._tree_set(slot, _CLOSED)
        key = self.entry.pop(bin.index)
        del self.by_residual[bisect_left(self.by_residual, key)]

    def update(self, bin: Bin) -> None:
        self._tree_set(self.slot_of[bin.index], bin.residual)
        old = self.entry[bin.index]
        del self.by_residual[bisect_left(self.by_residual, old)]
        key = (bin.residual, bin.index)
        insort(self.by_residual, key)
        self.entry[bin.index] = key

    # -------------------------------------------------------------- queries

    def first_fit(self, size: Num) -> Bin | None:
        """Earliest-opened bin with residual >= ``size`` (O(log n))."""
        tree = self.tree
        if tree[1] < size:
            return None
        node = 1
        while node < self.cap:
            node <<= 1
            if tree[node] < size:
                node += 1
        return self.slots[node - self.cap]

    def best_fit(self, size: Num) -> tuple[Num, int] | None:
        """``(residual, bin.index)`` of the tightest fit, or None (O(log n)).

        Ties on residual resolve to the lowest ``bin.index`` — the
        earliest-opened bin, matching the list scan's strict-< rule.
        """
        # (size, -1) sorts before every real (size, bin.index) key: indexes
        # are >= 0, so the search lands on the first residual >= size.
        i = bisect_left(self.by_residual, (size, -1))
        if i == len(self.by_residual):
            return None
        return self.by_residual[i]

    # ------------------------------------------------------------ internals

    def _grow(self) -> None:
        self.cap *= 2
        self.slots.extend([None] * (self.cap - len(self.slots)))
        tree: list[Num] = [_CLOSED] * (2 * self.cap)
        for slot, bin in enumerate(self.slots):
            if bin is not None:
                tree[self.cap + slot] = bin.residual
        for node in range(self.cap - 1, 0, -1):
            tree[node] = max(tree[2 * node], tree[2 * node + 1])
        self.tree = tree

    def _tree_set(self, slot: int, value: Num) -> None:
        tree = self.tree
        node = self.cap + slot
        tree[node] = value
        node >>= 1
        while node:
            best = max(tree[2 * node], tree[2 * node + 1])
            if tree[node] == best:
                break
            tree[node] = best
            node >>= 1


class OpenBinIndex:
    """Slot-map of open bins with per-label ordered fit indexes.

    The simulator owns one instance and keeps it current: ``add`` on bin
    open (after the algorithm's ``on_bin_opened`` hook has set the label),
    ``update`` after any placement or partial departure changes a bin's
    residual, ``discard`` when the bin closes.  Membership tests, length
    and removal are O(1); fit queries are O(log n); iteration yields bins
    in opening order.
    """

    __slots__ = ("_by_index", "_pools", "_label_of")

    def __init__(self) -> None:
        self._by_index: dict[int, Bin] = {}  # insertion order == opening order
        self._pools: dict[Any, _Pool] = {}
        self._label_of: dict[int, Any] = {}  # label at registration time

    # ------------------------------------------------------- set protocol

    def __len__(self) -> int:
        return len(self._by_index)

    def __iter__(self) -> Iterator[Bin]:
        return iter(self._by_index.values())

    def __contains__(self, bin: object) -> bool:
        return isinstance(bin, Bin) and self._by_index.get(bin.index) is bin

    def __repr__(self) -> str:  # pragma: no cover
        return f"OpenBinIndex({len(self)} open)"

    # ----------------------------------------------------------- mutation

    def add(self, bin: Bin) -> None:
        """Register a newly opened bin under its current label."""
        if bin.index in self._by_index:
            raise ValueError(f"bin {bin.index} is already indexed")
        self._by_index[bin.index] = bin
        label = bin.label
        pool = self._pools.get(label)
        if pool is None:
            pool = self._pools[label] = _Pool()
        pool.add(bin)
        self._label_of[bin.index] = label

    def discard(self, bin: Bin) -> None:
        """Drop a (closed) bin from the index."""
        del self._by_index[bin.index]
        label = self._label_of.pop(bin.index)
        self._pools[label].discard(bin)

    def update(self, bin: Bin) -> None:
        """Refresh the ordered views after the bin's residual changed."""
        self._pools[self._label_of[bin.index]].update(bin)

    # ------------------------------------------------------------ queries

    def first_fit(self, size: Num, label: Any = ANY_LABEL) -> Bin | None:
        """Earliest-opened bin with residual >= ``size``, or ``None``.

        With the default ``ANY_LABEL`` the search spans every pool (plain
        First Fit); passing a label restricts it to that pool (Modified
        First Fit's per-class rule).
        """
        if label is ANY_LABEL:
            best: Bin | None = None
            for pool in self._pools.values():
                hit = pool.first_fit(size)
                if hit is not None and (best is None or hit.index < best.index):
                    best = hit
            return best
        pool = self._pools.get(label)
        return pool.first_fit(size) if pool is not None else None

    def best_fit(self, size: Num, label: Any = ANY_LABEL) -> Bin | None:
        """Tightest-fitting bin (smallest residual >= ``size``), or ``None``.

        Ties on residual resolve to the earliest-opened bin, matching the
        list scan's behaviour.  ``label`` restricts the search as in
        :meth:`first_fit`.
        """
        if label is ANY_LABEL:
            best: tuple[Num, int] | None = None
            for pool in self._pools.values():
                hit = pool.best_fit(size)
                if hit is not None and (best is None or hit < best):
                    best = hit
        else:
            pool = self._pools.get(label)
            best = pool.best_fit(size) if pool is not None else None
        if best is None:
            return None
        return self._by_index[best[1]]


class OpenBinView(Sequence[Bin]):
    """Read-only sequence view over an :class:`OpenBinIndex`.

    Iteration (opening order), ``len`` and ``in`` are as cheap as on the
    index itself; positional access materializes lazily and is O(n), which
    the adversarial constructions' small simulations can afford.  Handing
    this view out instead of copying the open-bin list keeps
    ``Simulator.open_bins`` O(1).
    """

    __slots__ = ("_index",)

    def __init__(self, index: OpenBinIndex) -> None:
        self._index = index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Bin]:
        return iter(self._index)

    def __contains__(self, bin: object) -> bool:
        return bin in self._index

    @overload
    def __getitem__(self, pos: int) -> Bin: ...

    @overload
    def __getitem__(self, pos: slice) -> list[Bin]: ...

    def __getitem__(self, pos: int | slice) -> Bin | list[Bin]:
        if isinstance(pos, slice):
            return list(self._index)[pos]
        n = len(self._index)
        if pos < 0:
            pos += n
        if not 0 <= pos < n:
            raise IndexError("open-bin index out of range")
        return next(islice(iter(self._index), pos, None))

    def __repr__(self) -> str:  # pragma: no cover
        return f"OpenBinView({len(self)} open)"
