"""Indexed open-bin state: O(1) membership, O(log n) fit queries.

The seed engine kept open bins in a plain list, so every First Fit arrival
scanned all open bins and every departure paid an O(n) ``list.remove`` —
quadratic end-to-end.  :class:`OpenBinIndex` replaces the list with a
slot-map keyed by ``bin.index`` plus, per bin label, two ordered views
maintained on every add/remove/update:

* a **max-residual segment tree** over opening-order slots, answering
  "lowest-index open bin with residual >= s" (the First Fit query) by a
  single root-to-leaf descent, and
* a **sorted residual list** answering "smallest residual >= s, earliest
  opened on ties" (the Best Fit query) by binary search.

Pools holding :class:`Resources` residuals (vector runs) swap the segment
tree for per-dimension NumPy residual columns intersected in one
vectorised sweep — see :class:`_VectorPool`.

Bins are pooled by the ``bin.label`` they carry when registered (Modified
First/Best Fit segregate large- and small-item bins this way); queries
either target one pool or combine all pools.  Labels must not change after
a bin is indexed.

:class:`OpenBinView` is the immutable sequence facade the simulator hands
to list-scanning algorithms and exposes as ``Simulator.open_bins`` —
iteration is in opening order and costs nothing extra; positional indexing
is supported for compatibility but is O(n).
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections.abc import Sequence
from itertools import islice
from typing import TYPE_CHECKING, Any, Iterator, overload

import numpy as np

from .numeric import Num
from .bin import Bin
from .resources import Resources, Size

if TYPE_CHECKING:
    _FloatColumn = np.ndarray[Any, np.dtype[np.float64]]

__all__ = ["ANY_LABEL", "OpenBinIndex", "OpenBinView"]

#: Residual stored for dead (closed) slots — compares below every item size.
_CLOSED = float("-inf")


class _AnyLabel:
    """Sentinel for fit queries spanning every label pool."""

    _instance: "_AnyLabel | None" = None

    def __new__(cls) -> "_AnyLabel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "ANY_LABEL"


ANY_LABEL = _AnyLabel()


class _Pool:
    """Fit indexes for the open bins sharing one label."""

    __slots__ = ("cap", "n_slots", "tree", "slots", "slot_of", "by_residual", "entry")

    def __init__(self) -> None:
        self.cap = 1  # leaf capacity of the segment tree (power of two)
        self.n_slots = 0  # slots ever allocated, including dead ones
        self.tree: list[Num] = [_CLOSED, _CLOSED]  # 1-based max tree, leaves at cap+i
        self.slots: list[Bin | None] = [None]
        self.slot_of: dict[int, int] = {}  # bin.index -> slot
        self.by_residual: list[tuple[Num, int]] = []  # sorted (residual, bin.index)
        self.entry: dict[int, tuple[Num, int]] = {}  # bin.index -> its by_residual key

    def __len__(self) -> int:
        return len(self.slot_of)

    # ------------------------------------------------------------- mutation

    def add(self, bin: Bin) -> None:
        if isinstance(bin.residual, Resources):
            raise TypeError(
                f"bin {bin.index} has a vector residual; scalar and vector "
                "bins cannot share a label pool"
            )
        if self.n_slots == self.cap:
            self._grow()
        slot = self.n_slots
        self.n_slots += 1
        self.slots[slot] = bin
        self.slot_of[bin.index] = slot
        self._tree_set(slot, bin.residual)
        key = (bin.residual, bin.index)
        insort(self.by_residual, key)
        self.entry[bin.index] = key

    def discard(self, bin: Bin) -> None:
        slot = self.slot_of.pop(bin.index)
        self.slots[slot] = None
        self._tree_set(slot, _CLOSED)
        key = self.entry.pop(bin.index)
        del self.by_residual[bisect_left(self.by_residual, key)]

    def update(self, bin: Bin) -> None:
        self._tree_set(self.slot_of[bin.index], bin.residual)
        old = self.entry[bin.index]
        del self.by_residual[bisect_left(self.by_residual, old)]
        key = (bin.residual, bin.index)
        insort(self.by_residual, key)
        self.entry[bin.index] = key

    # -------------------------------------------------------------- queries

    def first_fit(self, size: Num) -> Bin | None:
        """Earliest-opened bin with residual >= ``size`` (O(log n))."""
        tree = self.tree
        if tree[1] < size:
            return None
        node = 1
        while node < self.cap:
            node <<= 1
            if tree[node] < size:
                node += 1
        return self.slots[node - self.cap]

    def best_fit(self, size: Num) -> tuple[Num, int] | None:
        """``(residual, bin.index)`` of the tightest fit, or None (O(log n)).

        Ties on residual resolve to the lowest ``bin.index`` — the
        earliest-opened bin, matching the list scan's strict-< rule.
        """
        # (size, -1) sorts before every real (size, bin.index) key: indexes
        # are >= 0, so the search lands on the first residual >= size.
        i = bisect_left(self.by_residual, (size, -1))
        if i == len(self.by_residual):
            return None
        return self.by_residual[i]

    # ------------------------------------------------------------ internals

    def _grow(self) -> None:
        self.cap *= 2
        self.slots.extend([None] * (self.cap - len(self.slots)))
        tree: list[Num] = [_CLOSED] * (2 * self.cap)
        for slot, bin in enumerate(self.slots):
            if bin is not None:
                tree[self.cap + slot] = bin.residual
        for node in range(self.cap - 1, 0, -1):
            tree[node] = max(tree[2 * node], tree[2 * node + 1])
        self.tree = tree

    def _tree_set(self, slot: int, value: Num) -> None:
        tree = self.tree
        node = self.cap + slot
        tree[node] = value
        node >>= 1
        while node:
            best = max(tree[2 * node], tree[2 * node + 1])
            if tree[node] == best:
                break
            tree[node] = best
            node >>= 1


def _float_upper(value: Num) -> float:
    """Smallest float known to be >= ``value`` (exact for float inputs)."""
    f = float(value)
    return f if f >= value else math.nextafter(f, math.inf)


def _float_lower(value: Num) -> float:
    """Largest float known to be <= ``value`` (exact for float inputs)."""
    f = float(value)
    return f if f <= value else math.nextafter(f, -math.inf)


class _VectorPool:
    """Fit indexes for open bins with :class:`Resources` residuals.

    The scalar pool's single max-residual tree becomes one **residual
    column per dimension** over the same opening-order slots, held as
    NumPy float arrays.  A First Fit query intersects the per-dimension
    candidate sets in one vectorised sweep — ``(col_d >= need_d)`` for
    every dimension, combined with ``&`` — and walks the surviving slots
    in opening order, confirming exact dominance on the candidate's true
    residual.  Columns store rounded-up floats and demands round down
    (`_float_upper`/`_float_lower`), so exact residuals that dominate are
    never masked out — the float mask over-approximates and the exact
    check rejects the rare false positive.  The sweep is O(n) per query
    but at C speed over contiguous memory, which in practice beats a
    pruned multi-tree descent: per-dimension maxima inside a subtree can
    come from *different* bins, so tree pruning degenerates to a
    Python-speed scan exactly when bins are tight (the common case).

    Best Fit keys the sorted list on the canonical max-dimension
    scalarisation of the residual.  Dominance implies
    ``scal_max(size) <= scal_max(residual)``, so every dominating bin lies
    at or after the bisection point; the forward scan stops at the first
    entry whose residual actually dominates.  In one dimension both
    structures reduce exactly to the scalar pool's orderings, which the
    differential suite checks byte for byte.
    """

    __slots__ = ("dims", "cap", "n_slots", "cols", "slots", "slot_of", "by_residual", "entry")

    def __init__(self, dims: int) -> None:
        self.dims = dims
        self.cap = 1  # slot capacity of each residual column (power of two)
        self.n_slots = 0
        self.cols: list[_FloatColumn] = [
            np.full(1, _CLOSED, dtype=np.float64) for _ in range(dims)
        ]
        self.slots: list[Bin | None] = [None]
        self.slot_of: dict[int, int] = {}  # bin.index -> slot
        self.by_residual: list[tuple[Num, int]] = []  # sorted (scal_max, bin.index)
        self.entry: dict[int, tuple[Num, int]] = {}

    def __len__(self) -> int:
        return len(self.slot_of)

    # ------------------------------------------------------------- mutation

    def _residual_of(self, bin: Bin) -> Resources:
        residual = bin.residual
        if not isinstance(residual, Resources):
            raise TypeError(
                f"bin {bin.index} has a scalar residual; scalar and vector "
                "bins cannot share a label pool"
            )
        if residual.dims != self.dims:
            raise ValueError(
                f"bin {bin.index} is {residual.dims}-D in a {self.dims}-D pool"
            )
        return residual

    def add(self, bin: Bin) -> None:
        residual = self._residual_of(bin)
        if self.n_slots == self.cap:
            self._grow()
        slot = self.n_slots
        self.n_slots += 1
        self.slots[slot] = bin
        self.slot_of[bin.index] = slot
        self._cols_set(slot, residual)
        key = (residual.max_component(), bin.index)
        insort(self.by_residual, key)
        self.entry[bin.index] = key

    def discard(self, bin: Bin) -> None:
        slot = self.slot_of.pop(bin.index)
        self.slots[slot] = None
        self._cols_set(slot, None)
        key = self.entry.pop(bin.index)
        del self.by_residual[bisect_left(self.by_residual, key)]
        # Keep the sweep window dense: once dead slots outnumber live ones
        # the candidate sweep would mostly scan tombstones, so rebuild the
        # opening-order prefix (amortised O(1) per discard).
        if self.n_slots >= 64 and 2 * len(self.slot_of) < self.n_slots:
            self._compact()

    def update(self, bin: Bin) -> None:
        residual = self._residual_of(bin)
        self._cols_set(self.slot_of[bin.index], residual)
        old = self.entry[bin.index]
        del self.by_residual[bisect_left(self.by_residual, old)]
        key = (residual.max_component(), bin.index)
        insort(self.by_residual, key)
        self.entry[bin.index] = key

    # -------------------------------------------------------------- queries

    def first_fit(self, size: Resources) -> Bin | None:
        """Earliest-opened bin whose residual dominates ``size``.

        One vectorised candidate-intersection sweep over the per-dimension
        residual columns, then exact dominance checks on the surviving
        slots in opening order (almost always just the first).
        """
        n = self.n_slots
        if n == 0:
            return None
        need = size.values
        cols = self.cols
        mask = cols[0][:n] >= _float_lower(need[0])
        for d in range(1, self.dims):
            mask &= cols[d][:n] >= _float_lower(need[d])
        slots = self.slots
        for slot in np.flatnonzero(mask):
            bin = slots[slot]
            if bin is not None and size <= bin.residual:
                return bin
        return None

    def best_fit(self, size: Resources) -> tuple[Num, int] | None:
        """``(scal_max(residual), bin.index)`` of the canonical tightest fit.

        "Tightest" under the max-dimension scalarisation, earliest opened
        on ties — the same rule the vector Best Fit list scan applies, and
        exactly the scalar rule in 1-D.
        """
        lo = (size.max_component(), -1)
        by_residual = self.by_residual
        slots = self.slots
        slot_of = self.slot_of
        for i in range(bisect_left(by_residual, lo), len(by_residual)):
            key = by_residual[i]
            candidate = slots[slot_of[key[1]]]
            assert candidate is not None
            if size <= candidate.residual:
                return key
        return None

    # ------------------------------------------------------------ internals

    def _grow(self) -> None:
        self.cap *= 2
        self.slots.extend([None] * (self.cap - len(self.slots)))
        pad = np.full(self.cap // 2, _CLOSED, dtype=np.float64)
        self.cols = [np.concatenate([col, pad]) for col in self.cols]

    def _compact(self) -> None:
        live = [bin for bin in self.slots[: self.n_slots] if bin is not None]
        self.slots = live + [None] * (self.cap - len(live))
        self.slot_of = {bin.index: slot for slot, bin in enumerate(live)}
        self.n_slots = len(live)
        for col in self.cols:
            col[:] = _CLOSED
        for slot, bin in enumerate(live):
            self._cols_set(slot, self._residual_of(bin))

    def _cols_set(self, slot: int, residual: Resources | None) -> None:
        for d in range(self.dims):
            self.cols[d][slot] = (
                _CLOSED if residual is None else _float_upper(residual[d])
            )


class OpenBinIndex:
    """Slot-map of open bins with per-label ordered fit indexes.

    The simulator owns one instance and keeps it current: ``add`` on bin
    open (after the algorithm's ``on_bin_opened`` hook has set the label),
    ``update`` after any placement or partial departure changes a bin's
    residual, ``discard`` when the bin closes.  Membership tests, length
    and removal are O(1); fit queries are O(log n); iteration yields bins
    in opening order.
    """

    __slots__ = ("_by_index", "_pools", "_label_of")

    def __init__(self) -> None:
        self._by_index: dict[int, Bin] = {}  # insertion order == opening order
        self._pools: dict[Any, _Pool | _VectorPool] = {}
        self._label_of: dict[int, Any] = {}  # label at registration time

    # ------------------------------------------------------- set protocol

    def __len__(self) -> int:
        return len(self._by_index)

    def __iter__(self) -> Iterator[Bin]:
        return iter(self._by_index.values())

    def __contains__(self, bin: object) -> bool:
        return isinstance(bin, Bin) and self._by_index.get(bin.index) is bin

    def __repr__(self) -> str:  # pragma: no cover
        return f"OpenBinIndex({len(self)} open)"

    # ----------------------------------------------------------- mutation

    def add(self, bin: Bin) -> None:
        """Register a newly opened bin under its current label."""
        if bin.index in self._by_index:
            raise ValueError(f"bin {bin.index} is already indexed")
        self._by_index[bin.index] = bin
        label = bin.label
        pool = self._pools.get(label)
        if pool is None:
            residual = bin.residual
            pool = self._pools[label] = (
                _VectorPool(residual.dims)
                if isinstance(residual, Resources)
                else _Pool()
            )
        pool.add(bin)
        self._label_of[bin.index] = label

    def discard(self, bin: Bin) -> None:
        """Drop a (closed) bin from the index."""
        del self._by_index[bin.index]
        label = self._label_of.pop(bin.index)
        self._pools[label].discard(bin)

    def update(self, bin: Bin) -> None:
        """Refresh the ordered views after the bin's residual changed."""
        self._pools[self._label_of[bin.index]].update(bin)

    # ------------------------------------------------------------ queries

    def first_fit(self, size: Size, label: Any = ANY_LABEL) -> Bin | None:
        """Earliest-opened bin with residual >= ``size``, or ``None``.

        With the default ``ANY_LABEL`` the search spans every pool (plain
        First Fit); passing a label restricts it to that pool (Modified
        First Fit's per-class rule).
        """
        if label is ANY_LABEL:
            best: Bin | None = None
            for pool in self._pools.values():
                hit = pool.first_fit(size)
                if hit is not None and (best is None or hit.index < best.index):
                    best = hit
            return best
        pool = self._pools.get(label)
        return pool.first_fit(size) if pool is not None else None

    def best_fit(self, size: Size, label: Any = ANY_LABEL) -> Bin | None:
        """Tightest-fitting bin (smallest residual >= ``size``), or ``None``.

        Ties on residual resolve to the earliest-opened bin, matching the
        list scan's behaviour.  ``label`` restricts the search as in
        :meth:`first_fit`.
        """
        if label is ANY_LABEL:
            best: tuple[Num, int] | None = None
            for pool in self._pools.values():
                hit = pool.best_fit(size)
                if hit is not None and (best is None or hit < best):
                    best = hit
        else:
            pool = self._pools.get(label)
            best = pool.best_fit(size) if pool is not None else None
        if best is None:
            return None
        return self._by_index[best[1]]


class OpenBinView(Sequence[Bin]):
    """Read-only sequence view over an :class:`OpenBinIndex`.

    Iteration (opening order), ``len`` and ``in`` are as cheap as on the
    index itself; positional access materializes lazily and is O(n), which
    the adversarial constructions' small simulations can afford.  Handing
    this view out instead of copying the open-bin list keeps
    ``Simulator.open_bins`` O(1).
    """

    __slots__ = ("_index",)

    def __init__(self, index: OpenBinIndex) -> None:
        self._index = index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[Bin]:
        return iter(self._index)

    def __contains__(self, bin: object) -> bool:
        return bin in self._index

    @overload
    def __getitem__(self, pos: int) -> Bin: ...

    @overload
    def __getitem__(self, pos: slice) -> list[Bin]: ...

    def __getitem__(self, pos: int | slice) -> Bin | list[Bin]:
        if isinstance(pos, slice):
            return list(self._index)[pos]
        n = len(self._index)
        if pos < 0:
            pos += n
        if not 0 <= pos < n:
            raise IndexError("open-bin index out of range")
        return next(islice(iter(self._index), pos, None))

    def __repr__(self) -> str:  # pragma: no cover
        return f"OpenBinView({len(self)} open)"
