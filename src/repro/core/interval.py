"""Interval arithmetic used throughout the reproduction.

The paper's ``span`` of an item list (Figure 1) is the measure of the union
of the items' active intervals.  This module implements closed-interval
unions, intersections and measures exactly (no discretisation), working for
``int``, ``float`` and :class:`fractions.Fraction` endpoints alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence
from .numeric import Num

__all__ = [
    "Interval",
    "merge_intervals",
    "union_length",
    "span",
    "intervals_overlap",
    "interval_difference",
]


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``[left, right]`` with ``right >= left``."""

    left: Num
    right: Num

    def __post_init__(self) -> None:
        if self.right < self.left:
            raise ValueError(f"empty interval: [{self.left}, {self.right}]")

    @property
    def length(self) -> Num:
        return self.right - self.left

    def contains(self, t: Num) -> bool:
        return self.left <= t <= self.right

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals share more than a point.

        Two intervals that merely touch at an endpoint have an intersection
        of measure zero and are *not* considered overlapping, matching the
        paper's use ("their time intervals overlap") for reference periods.
        """
        return self.left < other.right and other.left < self.right

    def intersection(self, other: "Interval") -> "Interval | None":
        lo = max(self.left, other.left)
        hi = min(self.right, other.right)
        if hi < lo:
            return None
        return Interval(lo, hi)


def intervals_overlap(a: Interval, b: Interval) -> bool:
    """Module-level alias of :meth:`Interval.overlaps`."""
    return a.overlaps(b)


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Merge intervals into a minimal sorted list of disjoint intervals.

    Touching intervals (``a.right == b.left``) are merged, since their union
    is a single interval.
    """
    ivs = sorted(intervals, key=lambda iv: (iv.left, iv.right))
    merged: list[Interval] = []
    for iv in ivs:
        if merged and iv.left <= merged[-1].right:
            last = merged[-1]
            if iv.right > last.right:
                merged[-1] = Interval(last.left, iv.right)
        else:
            merged.append(iv)
    return merged


def union_length(intervals: Iterable[Interval]) -> Num:
    """Measure of the union of the intervals (0 for an empty collection)."""
    merged = merge_intervals(intervals)
    total: Num = 0
    for iv in merged:
        total = total + iv.length
    return total


def span(intervals: Iterable[tuple[Num, Num]] | Iterable[Interval]) -> Num:
    """The paper's ``span``: length of time at least one interval is active.

    Accepts either :class:`Interval` objects or ``(left, right)`` pairs,
    e.g. ``span(item.interval for item in items)``.
    """
    ivs = [iv if isinstance(iv, Interval) else Interval(*iv) for iv in intervals]
    return union_length(ivs)


def interval_difference(a: Interval, subtract: Sequence[Interval]) -> list[Interval]:
    """The parts of ``a`` not covered by any interval in ``subtract``.

    Used to compute the ``I_i^R`` residual periods of the Theorem 4/5 proof
    decomposition.  Returns a sorted list of disjoint (possibly degenerate,
    zero-length pieces are dropped) intervals.
    """
    pieces: list[Interval] = []
    cursor = a.left
    for iv in merge_intervals(subtract):
        if iv.right <= cursor:
            continue
        if iv.left >= a.right:
            break
        if iv.left > cursor:
            pieces.append(Interval(cursor, min(iv.left, a.right)))
        cursor = max(cursor, iv.right)
        if cursor >= a.right:
            break
    if cursor < a.right:
        pieces.append(Interval(cursor, a.right))
    return [p for p in pieces if p.length > 0]
