"""Bin cost models.

The paper charges each bin ``C`` per unit time while open (continuous
billing).  Public clouds of the paper's era billed by the hour (Amazon EC2),
so the cloud substrate also offers quantised billing: a bin's usage is
rounded up to a whole number of billing quanta.  The theory's objective is
the continuous model; the quantised model is used by experiment E10 to show
the same algorithm ranking survives realistic pricing.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from .numeric import Num

__all__ = ["CostModel", "ContinuousCost", "QuantizedCost"]


class CostModel(ABC):
    """Maps a bin usage duration to money."""

    @abstractmethod
    def bin_cost(self, duration: Num) -> Num:
        """Cost of keeping one bin open for ``duration`` time units."""


@dataclass(frozen=True, slots=True)
class ContinuousCost(CostModel):
    """The paper's model: ``cost = rate × duration``."""

    rate: Num = 1

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"cost rate must be positive, got {self.rate}")

    def bin_cost(self, duration: Num) -> Num:
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        return self.rate * duration


@dataclass(frozen=True, slots=True)
class QuantizedCost(CostModel):
    """EC2-style billing: usage rounded up to whole quanta.

    ``cost = rate × quantum × ceil(duration / quantum)``; a bin open for
    61 minutes under hourly billing (quantum=60) pays for 120 minutes.
    A zero-duration bin still pays for one quantum (instances are billed
    from launch).
    """

    rate: Num = 1
    quantum: Num = 1

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"cost rate must be positive, got {self.rate}")
        if self.quantum <= 0:
            raise ValueError(f"billing quantum must be positive, got {self.quantum}")

    def bin_cost(self, duration: Num) -> Num:
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        quanta = max(1, math.ceil(duration / self.quantum))
        return self.rate * self.quantum * quanta
