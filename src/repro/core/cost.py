"""Bin cost models.

The paper charges each bin ``C`` per unit time while open (continuous
billing).  Public clouds of the paper's era billed by the hour (Amazon EC2),
so the cloud substrate also offers quantised billing: a bin's usage is
rounded up to a whole number of billing quanta.  The theory's objective is
the continuous model; the quantised model is used by experiment E10 to show
the same algorithm ranking survives realistic pricing.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from .numeric import Num
from .resources import Resources, Size

__all__ = ["CostModel", "ContinuousCost", "QuantizedCost", "rate_for_capacity"]


class CostModel(ABC):
    """Maps a bin usage duration to money."""

    @abstractmethod
    def bin_cost(self, duration: Num) -> Num:
        """Cost of keeping one bin open for ``duration`` time units."""


@dataclass(frozen=True, slots=True)
class ContinuousCost(CostModel):
    """The paper's model: ``cost = rate × duration``."""

    rate: Num = 1

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"cost rate must be positive, got {self.rate}")

    def bin_cost(self, duration: Num) -> Num:
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        return self.rate * duration


@dataclass(frozen=True, slots=True)
class QuantizedCost(CostModel):
    """EC2-style billing: usage rounded up to whole quanta.

    ``cost = rate × quantum × ceil(duration / quantum)``; a bin open for
    61 minutes under hourly billing (quantum=60) pays for 120 minutes.
    A zero-duration bin still pays for one quantum (instances are billed
    from launch).
    """

    rate: Num = 1
    quantum: Num = 1

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"cost rate must be positive, got {self.rate}")
        if self.quantum <= 0:
            raise ValueError(f"billing quantum must be positive, got {self.quantum}")

    def bin_cost(self, duration: Num) -> Num:
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        quanta = max(1, math.ceil(duration / self.quantum))
        return self.rate * self.quantum * quanta


def rate_for_capacity(capacity: Size, unit_rates: "Sequence[Num] | Num" = 1) -> Num:
    """Derive a bin's rental rate from its (possibly vector) capacity.

    Cloud pricing is close to linear in provisioned resources: a flavour
    with capacity ``(gpu, cpu, mem)`` rents at ``Σ_d unit_rates[d]·W_d``
    per unit time.  Scalar capacities pay ``unit_rate × W`` — the same
    formula the scalar flavour experiments have always used — so 1-D
    vector flavours price identically to their scalar counterparts.
    """
    if isinstance(capacity, Resources):
        if isinstance(unit_rates, Sequence):
            rate = capacity.dot(unit_rates)
        else:
            rate = capacity.sum_components() * unit_rates
    else:
        if isinstance(unit_rates, Sequence):
            if len(unit_rates) != 1:
                raise ValueError(
                    f"scalar capacity takes one unit rate, got {len(unit_rates)}"
                )
            rate = capacity * unit_rates[0]
        else:
            rate = capacity * unit_rates
    if rate <= 0:
        raise ValueError(f"derived rate must be positive, got {rate}")
    return rate
