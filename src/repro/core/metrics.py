"""Trace and packing metrics from Table 1 of the paper.

Everything the competitive analysis is phrased in: interval lengths, the
max/min interval length ratio ``μ``, span, total resource demand ``u(R)``,
plus derived quantities such as average utilisation of a packing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from .numeric import Num
from .interval import Interval, union_length
from .item import Item
from .resources import Resources, Size, elementwise_max, elementwise_min
from .result import PackingResult

__all__ = [
    "min_interval_length",
    "max_interval_length",
    "interval_ratio",
    "trace_span",
    "total_demand",
    "TraceStats",
    "trace_stats",
    "utilization",
]


def _as_list(items: Iterable[Item]) -> list[Item]:
    out = list(items)
    if not out:
        raise ValueError("metric undefined for an empty item list")
    return out


def min_interval_length(items: Iterable[Item]) -> Num:
    """``Δ = min_r len(I(r))``: the minimum item interval length."""
    return min(it.length for it in _as_list(items))


def max_interval_length(items: Iterable[Item]) -> Num:
    """``μΔ = max_r len(I(r))``: the maximum item interval length."""
    return max(it.length for it in _as_list(items))


def interval_ratio(items: Iterable[Item]) -> Num:
    """``μ``: the max/min item interval length ratio (≥ 1)."""
    items = _as_list(items)
    return max_interval_length(items) / min_interval_length(items)


def trace_span(items: Iterable[Item]) -> Num:
    """``span(R)``: length of time at least one item is active (Figure 1)."""
    return union_length([Interval(it.arrival, it.departure) for it in _as_list(items)])


def total_demand(items: Iterable[Item]) -> Size:
    """``u(R) = Σ_r s(r)·len(I(r))``: the total resource demand
    (per-dimension for vector traces)."""
    total: Size = 0
    for it in _as_list(items):
        total = total + it.demand
    return total


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Summary statistics of an item list."""

    num_items: int
    span: Num
    total_demand: Num
    min_interval: Num
    max_interval: Num
    mu: Num
    #: Elementwise extremes for vector traces, plain min/max for scalars.
    min_size: Size
    max_size: Size
    first_arrival: Num
    last_departure: Num

    @property
    def packing_period(self) -> Num:
        """Length of ``[min_r a(r), max_r d(r)]``."""
        return self.last_departure - self.first_arrival


def _reduce_sizes(items: list[Item], combine: "Callable[[Size, Size], Size]") -> Size:
    acc = items[0].size
    for it in items[1:]:
        acc = combine(acc, it.size)
    return acc


def trace_stats(items: Iterable[Item]) -> TraceStats:
    """Compute :class:`TraceStats` in a single pass over the trace."""
    items = _as_list(items)
    lengths = [it.length for it in items]
    lo, hi = min(lengths), max(lengths)
    return TraceStats(
        num_items=len(items),
        span=trace_span(items),
        total_demand=total_demand(items),
        min_interval=lo,
        max_interval=hi,
        mu=hi / lo,
        min_size=_reduce_sizes(items, elementwise_min),
        max_size=_reduce_sizes(items, elementwise_max),
        first_arrival=min(it.arrival for it in items),
        last_departure=max(it.departure for it in items),
    )


def utilization(result: PackingResult) -> float:
    """Average bin utilisation of a packing.

    ``u(R) / Σ_i W_i·len(I_i)`` — the fraction of paid-for bin capacity
    that was actually used (per-bin capacities for heterogeneous fleets).
    Equals 1 only for a perfectly tight packing; bound (b.1) says no
    algorithm can exceed 1.
    """
    paid = result.total_capacity_time
    demand = total_demand(result.items)
    if isinstance(paid, Resources):
        # Vector packing: utilisation of the *bottleneck* dimension — the
        # axis that best justifies the capacity paid for.
        assert isinstance(demand, Resources)
        return max(
            float(u / p) for u, p in zip(demand.values, paid.values)
        )
    if paid == 0:
        raise ValueError("packing has zero total bin time")
    return float(demand / paid)
