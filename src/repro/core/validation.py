"""Typed validation errors for the trace/stream boundary.

Bad input used to surface as bare ``ValueError``/``RuntimeError`` strings
raised from wherever the corruption was first noticed — sometimes after
index state had already mutated.  This module defines a structured
exception hierarchy raised *before* any engine state changes, so callers
can catch one base class (:class:`TraceValidationError`) or discriminate
programmatically on the concrete type and its fields (``item_id``,
offending value, limit) instead of parsing messages.

Every class subclasses :class:`ValueError`, so existing ``except
ValueError`` call sites (and tests) keep working unchanged.
"""

from __future__ import annotations
from .numeric import Num


__all__ = [
    "TraceValidationError",
    "InvalidItemTypeError",
    "InvalidItemSizeError",
    "InvalidIntervalError",
    "OversizedItemError",
    "ResourceDimensionError",
    "DuplicateItemIdError",
    "EmptySweepError",
    "CheckpointFormatError",
    "CheckpointSchemaError",
]


class TraceValidationError(ValueError):
    """Base class for malformed trace/stream input.

    Subclasses carry the offending item's id and values as attributes so
    handlers (admission controllers, trace linters) can act on them
    without string parsing.
    """

    def __init__(self, message: str, *, item_id: str | None = None) -> None:
        super().__init__(message)
        self.item_id = item_id


class InvalidItemTypeError(TraceValidationError, TypeError):
    """An item field of the wrong type (not a ``Num`` or ``Resources``).

    Also subclasses :class:`TypeError` so pre-existing ``except TypeError``
    call sites around :class:`~repro.core.item.Item` construction keep
    working.
    """

    def __init__(
        self,
        field: str,
        value: object,
        *,
        expected: str = "a real number",
        item_id: str | None = None,
    ) -> None:
        super().__init__(
            f"Item.{field} must be {expected}, got {value!r}",
            item_id=item_id,
        )
        self.field = field
        self.value = value


class InvalidItemSizeError(TraceValidationError):
    """An item size that is not a positive demand (≤ 0, NaN, or an
    all-zero/negative resource vector)."""

    def __init__(self, size: object, *, item_id: str | None = None) -> None:
        super().__init__(
            f"item{f' {item_id!r}' if item_id else ''} size must be positive, "
            f"got {size}",
            item_id=item_id,
        )
        self.size = size


class InvalidIntervalError(TraceValidationError):
    """A departure time at or before the arrival time (``d(r) <= a(r)``)."""

    def __init__(
        self,
        arrival: Num,
        departure: Num,
        *,
        item_id: str | None = None,
    ) -> None:
        super().__init__(
            f"item{f' {item_id!r}' if item_id else ''} departure must be "
            f"strictly after arrival (got a(r)={arrival}, d(r)={departure})",
            item_id=item_id,
        )
        self.arrival = arrival
        self.departure = departure


class OversizedItemError(TraceValidationError):
    """An item larger than the bin capacity ``W`` — unplaceable anywhere.

    In vector runs ``size``/``capacity`` are ``Resources`` and
    ``dimension`` names the first axis on which the demand exceeds the
    capacity; scalar runs leave ``dimension`` as ``None``.
    """

    def __init__(
        self,
        size: object,
        capacity: object,
        *,
        item_id: str | None = None,
        dimension: int | None = None,
    ) -> None:
        where = f" in dimension {dimension}" if dimension is not None else ""
        super().__init__(
            f"item{f' {item_id!r}' if item_id else ''} has size {size} "
            f"exceeding bin capacity {capacity}{where}",
            item_id=item_id,
        )
        self.size = size
        self.capacity = capacity
        self.dimension = dimension


class ResourceDimensionError(TraceValidationError):
    """Mixed scalar/vector sizes, or vectors of different dimension, in one run.

    A simulation is either scalar or ``d``-dimensional throughout; the
    first offending item is reported rather than letting a partial-order
    comparison fail deep inside a placement rule.
    """

    def __init__(
        self,
        expected: int | None,
        got: int | None,
        *,
        item_id: str | None = None,
    ) -> None:
        def _name(d: int | None) -> str:
            return "scalar" if d is None else f"{d}-D vector"

        super().__init__(
            f"item{f' {item_id!r}' if item_id else ''} has a {_name(got)} size "
            f"in a {_name(expected)} run; sizes must be uniform",
            item_id=item_id,
        )
        self.expected = expected
        self.got = got


class DuplicateItemIdError(TraceValidationError):
    """Two items in one trace sharing an id."""

    def __init__(self, item_id: str) -> None:
        super().__init__(f"duplicate item id: {item_id!r}", item_id=item_id)


class CheckpointFormatError(ValueError):
    """A checkpoint payload that cannot be parsed into a ``StreamCheckpoint``.

    Raised by :meth:`repro.core.checkpoint.StreamCheckpoint.from_json` for
    malformed or truncated input — invalid JSON, a non-object payload, or
    missing/mistyped fields — instead of leaking the underlying
    ``json.JSONDecodeError``/``KeyError``/``TypeError``.  ``detail`` holds
    the parser-level description; the original exception rides along as
    ``__cause__``.
    """

    def __init__(self, detail: str) -> None:
        super().__init__(f"unreadable checkpoint payload: {detail}")
        self.detail = detail


class CheckpointSchemaError(CheckpointFormatError):
    """A checkpoint payload written under a different schema version.

    The payload parsed as JSON but its ``schema_version`` stamp does not
    match the version this engine writes, so restoring it could silently
    mis-restore state.  ``got`` is ``None`` when the stamp is absent
    entirely (a pre-versioning or foreign payload).
    """

    def __init__(self, *, expected: int, got: object) -> None:
        stamp = "no schema_version stamp" if got is None else f"schema_version {got!r}"
        ValueError.__init__(
            self,
            f"checkpoint payload carries {stamp}, but this engine reads "
            f"schema_version {expected}; re-capture the checkpoint with the "
            "current engine instead of restoring across formats",
        )
        self.detail = stamp
        self.expected = expected
        self.got = got


class EmptySweepError(ValueError):
    """A sweep or sharded run invoked with zero grid points.

    Subclasses :class:`ValueError` (the error's historical spelling in
    :func:`repro.analysis.sweep.run_sweep`) so existing ``except
    ValueError`` call sites keep working; raised identically by the serial
    and parallel execution paths before any work is scheduled.
    """

    def __init__(self, what: str = "sweep") -> None:
        super().__init__(f"empty {what}: no grid points to run")
        self.what = what
