"""Items of the MinTotal Dynamic Bin Packing problem.

An item ``r`` is the paper's 3-tuple ``(a(r), d(r), s(r))``: arrival time,
departure time and size.  In the cloud-gaming interpretation an item is a
playing request whose size is the GPU demand of the game instance and whose
interval is the play session.

All time and size values may be any real ``Num`` — ``int``,
``float`` or :class:`fractions.Fraction`.  Exact ``Fraction`` arithmetic is
used by the adversarial lower-bound constructions so that measured costs
match the paper's closed-form expressions exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Iterable

from .numeric import NUM_TYPES, Num
from .resources import (
    Resources,
    Size,
    dims_of,
    is_valid_size,
    oversize_dimension,
    size_fits,
)
from .validation import (
    DuplicateItemIdError,
    InvalidIntervalError,
    InvalidItemSizeError,
    InvalidItemTypeError,
    OversizedItemError,
    ResourceDimensionError,
    TraceValidationError,
)

__all__ = ["Item", "make_items", "validate_items"]

_id_counter = itertools.count()


def _fresh_id() -> str:
    # The "auto-" namespace keeps generated ids disjoint from
    # make_items(prefix="item") ids, which also read "item-N".
    return f"auto-item-{next(_id_counter)}"


@dataclass(frozen=True, slots=True)
class Item:
    """A single DBP item ``r = (a(r), d(r), s(r))``.

    Parameters
    ----------
    arrival:
        Arrival time ``a(r)``.
    departure:
        Departure time ``d(r)``; must satisfy ``d(r) > a(r)``.
    size:
        Item size ``s(r)``; must be strictly positive.
    item_id:
        Stable identifier, auto-generated when omitted.
    tag:
        Free-form annotation (e.g. the game title in cloud-gaming traces,
        or the adversary phase that emitted the item).
    """

    arrival: Num
    departure: Num
    size: Size
    item_id: str = field(default_factory=_fresh_id)
    tag: Any = None

    def __post_init__(self) -> None:
        for name in ("arrival", "departure"):
            value = getattr(self, name)
            if not isinstance(value, NUM_TYPES):
                raise InvalidItemTypeError(name, value, item_id=self.item_id)
            if value != value:  # NaN
                raise TraceValidationError(
                    f"Item.{name} must not be NaN", item_id=self.item_id
                )
        if not isinstance(self.size, (Resources, *NUM_TYPES)):
            raise InvalidItemTypeError(
                "size",
                self.size,
                expected="a real number or Resources vector",
                item_id=self.item_id,
            )
        if isinstance(self.size, float) and self.size != self.size:  # NaN
            raise TraceValidationError(
                "Item.size must not be NaN", item_id=self.item_id
            )
        if not self.departure > self.arrival:
            raise InvalidIntervalError(
                self.arrival, self.departure, item_id=self.item_id
            )
        if not is_valid_size(self.size):
            raise InvalidItemSizeError(self.size, item_id=self.item_id)

    @property
    def interval(self) -> tuple[Num, Num]:
        """The active interval ``I(r) = [a(r), d(r)]``."""
        return (self.arrival, self.departure)

    @property
    def length(self) -> Num:
        """Interval length ``len(I(r)) = d(r) - a(r)``."""
        return self.departure - self.arrival

    @property
    def demand(self) -> Size:
        """Resource demand ``u(r) = s(r) * len(I(r))`` (per-dimension for vectors)."""
        return self.size * self.length

    @property
    def dims(self) -> int | None:
        """Dimension count of the size: ``None`` for scalar items."""
        return dims_of(self.size)

    def active_at(self, t: Num) -> bool:
        """Whether the item is active at time ``t``.

        Following the paper, the active interval is closed on the left and
        open on the right for occupancy purposes: an item departing at ``t``
        no longer occupies capacity at ``t`` (the adversarial constructions
        rely on departures freeing capacity for same-instant arrivals).
        """
        return self.arrival <= t < self.departure

    def with_departure(self, departure: Num) -> "Item":
        """A copy of this item with a new departure time."""
        return replace(self, departure=departure)


def make_items(
    triples: Iterable[tuple[Num, Num, Size]],
    *,
    prefix: str = "item",
) -> list[Item]:
    """Build items from ``(arrival, departure, size)`` triples.

    Convenience constructor for tests, examples and docs.  Item ids are
    ``f"{prefix}-{index}"``; sizes may be scalars or ``Resources``.
    """
    return [
        Item(arrival=a, departure=d, size=s, item_id=f"{prefix}-{i}")
        for i, (a, d, s) in enumerate(triples)
    ]


def validate_items(
    items: Iterable[Item], *, capacity: Size | None = None
) -> list[Item]:
    """Validate a list of items, returning it as a concrete list.

    Checks for duplicate ids, uniform size dimensionality (all scalar or
    all ``d``-dimensional) and, when ``capacity`` is given, that every
    single item fits in a bin on its own — per dimension for vector sizes
    (a necessary feasibility condition for any packing).
    """
    out = list(items)
    seen: set[str] = set()
    trace_dims: int | None = None
    first = True
    for item in out:
        if item.item_id in seen:
            raise DuplicateItemIdError(item.item_id)
        seen.add(item.item_id)
        item_dims = dims_of(item.size)
        if first:
            trace_dims = item_dims
            first = False
        elif item_dims != trace_dims:
            raise ResourceDimensionError(
                trace_dims, item_dims, item_id=item.item_id
            )
        if capacity is not None:
            try:
                fits = size_fits(item.size, capacity)
            except TypeError:
                raise ResourceDimensionError(
                    dims_of(capacity), item_dims, item_id=item.item_id
                ) from None
            if not fits:
                raise OversizedItemError(
                    item.size,
                    capacity,
                    item_id=item.item_id,
                    dimension=oversize_dimension(item.size, capacity),
                )
    return out
