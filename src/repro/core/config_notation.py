"""The paper's bin-configuration notation ``<x1|_y1, ..., xk|_yk>``.

Table 1 of the paper denotes by ``x|_y`` a total size ``x`` composed of
items of size ``y`` each; a bin configuration is a sequence of such groups,
e.g. ``<1/2|_1/2, 2/5|_1/10>`` is a bin at level 9/10 holding one item of
size 1/2 and four items of size 1/10.

This module makes the notation executable: configurations can be built,
parsed from strings, expanded into concrete :class:`~repro.core.item.Item`
sizes, and compared against live bins.  The adversarial constructions use it
to assert that a packing reached exactly the bin states drawn in Figures 2
and 3 of the paper.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction
from .numeric import Num
from .resources import Resources, Size, is_valid_size

__all__ = ["ConfigGroup", "BinConfiguration", "parse_configuration"]


@dataclass(frozen=True, slots=True)
class ConfigGroup:
    """One ``x|_y`` group: total size ``x`` made of items of size ``y``.

    Vector groups use :class:`~repro.core.resources.Resources` for both
    fields; the per-dimension item counts must agree (``x_d = n·y_d`` for
    one integer ``n``), since a group is ``n`` copies of the same item.
    """

    total: Size
    item_size: Size

    def __post_init__(self) -> None:
        if not is_valid_size(self.item_size):
            raise ValueError(f"item size must be positive, got {self.item_size}")
        if isinstance(self.total, Resources) != isinstance(self.item_size, Resources):
            raise ValueError(
                f"group total {self.total} and item size {self.item_size} must "
                "both be scalar or both be vectors"
            )
        count = self._raw_count()
        if abs(count - round(count)) > 1e-9:
            raise ValueError(
                f"group total {self.total} is not an integer multiple of item size "
                f"{self.item_size}"
            )

    def _raw_count(self) -> Num:
        if isinstance(self.total, Resources):
            assert isinstance(self.item_size, Resources)
            if self.total.dims != self.item_size.dims:
                raise ValueError(
                    f"group total {self.total} and item size {self.item_size} "
                    "have different dimensions"
                )
            if any(v < 0 for v in self.total.values):
                raise ValueError(
                    f"group total must be non-negative, got {self.total}"
                )
            counts: list[Num] = []
            for x, y in zip(self.total.values, self.item_size.values):
                if y == 0:
                    if x != 0:
                        raise ValueError(
                            f"group total {self.total} demands a dimension where "
                            f"item size {self.item_size} is zero"
                        )
                else:
                    counts.append(x / y)
            ref = counts[0]
            if any(abs(c - ref) > 1e-9 for c in counts[1:]):
                raise ValueError(
                    f"group total {self.total} is not a uniform multiple of "
                    f"item size {self.item_size}"
                )
            return ref
        if self.total < 0:
            raise ValueError(f"group total must be non-negative, got {self.total}")
        return self.total / self.item_size

    @property
    def count(self) -> int:
        """Number of items in the group (``x / y``)."""
        return round(self._raw_count())

    def sizes(self) -> list[Size]:
        return [self.item_size] * self.count

    def __str__(self) -> str:
        return f"{self.total}|_{self.item_size}"


@dataclass(frozen=True, slots=True)
class BinConfiguration:
    """A bin configuration ``<x1|_y1, ..., xk|_yk>``."""

    groups: tuple[ConfigGroup, ...]

    @classmethod
    def of(cls, *pairs: tuple[Size, Size]) -> "BinConfiguration":
        """Build from ``(total, item_size)`` pairs."""
        return cls(groups=tuple(ConfigGroup(total=t, item_size=y) for t, y in pairs))

    @property
    def level(self) -> Size:
        """Total size of the configuration (the bin's level)."""
        total: Size = 0
        for g in self.groups:
            total = total + g.total
        return total

    @property
    def num_items(self) -> int:
        return sum(g.count for g in self.groups)

    def sizes(self) -> list[Size]:
        """Concrete item sizes, group by group."""
        out: list[Size] = []
        for g in self.groups:
            out.extend(g.sizes())
        return out

    def as_multiset(self) -> dict[Size, int]:
        """``{item_size: count}`` ignoring group boundaries."""
        counts: dict[Size, int] = {}
        for g in self.groups:
            counts[g.item_size] = counts.get(g.item_size, 0) + g.count
        return counts

    def matches(self, observed: dict[Size, int]) -> bool:
        """Whether an observed ``{size: count}`` map equals this configuration."""
        return self.as_multiset() == dict(observed)

    def __str__(self) -> str:
        return "<" + ", ".join(str(g) for g in self.groups) + ">"


_GROUP_RE = re.compile(r"^\s*(?P<total>[^|]+?)\s*\|_?\s*(?P<size>.+?)\s*$")


def _parse_number(text: str) -> Num:
    text = text.strip()
    if "/" in text:
        return Fraction(text)
    if re.fullmatch(r"[+-]?\d+", text):
        return int(text)
    return float(text)


def _parse_size(text: str) -> Size:
    text = text.strip()
    if text.startswith("(") and text.endswith(")"):
        return Resources(*(_parse_number(part) for part in text[1:-1].split(",")))
    return _parse_number(text)


def _split_groups(body: str) -> list[str]:
    """Split on top-level commas only — vector components stay together."""
    parts: list[str] = []
    depth = 0
    start = 0
    for i, ch in enumerate(body):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(body[start:i])
            start = i + 1
    parts.append(body[start:])
    return parts


def parse_configuration(text: str) -> BinConfiguration:
    """Parse a configuration string such as ``"<1/2|_1/2, 2/5|_1/10>"``.

    Accepts fractions (``1/3``), integers and decimals; the ``_`` after the
    bar is optional, so ``"1/2|1/2"`` also parses.  Vector groups write
    sizes as parenthesised tuples, e.g. ``"<(1/2, 1/4)|_(1/4, 1/8)>"``.
    """
    body = text.strip()
    if body.startswith("<") and body.endswith(">"):
        body = body[1:-1]
    body = body.strip()
    if not body:
        return BinConfiguration(groups=())
    groups: list[ConfigGroup] = []
    for part in _split_groups(body):
        m = _GROUP_RE.match(part)
        if not m:
            raise ValueError(f"malformed configuration group: {part!r}")
        groups.append(
            ConfigGroup(total=_parse_size(m.group("total")), item_size=_parse_size(m.group("size")))
        )
    return BinConfiguration(groups=tuple(groups))
