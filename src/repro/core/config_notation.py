"""The paper's bin-configuration notation ``<x1|_y1, ..., xk|_yk>``.

Table 1 of the paper denotes by ``x|_y`` a total size ``x`` composed of
items of size ``y`` each; a bin configuration is a sequence of such groups,
e.g. ``<1/2|_1/2, 2/5|_1/10>`` is a bin at level 9/10 holding one item of
size 1/2 and four items of size 1/10.

This module makes the notation executable: configurations can be built,
parsed from strings, expanded into concrete :class:`~repro.core.item.Item`
sizes, and compared against live bins.  The adversarial constructions use it
to assert that a packing reached exactly the bin states drawn in Figures 2
and 3 of the paper.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction
from .numeric import Num

__all__ = ["ConfigGroup", "BinConfiguration", "parse_configuration"]


@dataclass(frozen=True, slots=True)
class ConfigGroup:
    """One ``x|_y`` group: total size ``x`` made of items of size ``y``."""

    total: Num
    item_size: Num

    def __post_init__(self) -> None:
        if self.item_size <= 0:
            raise ValueError(f"item size must be positive, got {self.item_size}")
        if self.total < 0:
            raise ValueError(f"group total must be non-negative, got {self.total}")
        count = self.total / self.item_size
        if abs(count - round(count)) > 1e-9:
            raise ValueError(
                f"group total {self.total} is not an integer multiple of item size "
                f"{self.item_size}"
            )

    @property
    def count(self) -> int:
        """Number of items in the group (``x / y``)."""
        return round(self.total / self.item_size)

    def sizes(self) -> list[Num]:
        return [self.item_size] * self.count

    def __str__(self) -> str:
        return f"{self.total}|_{self.item_size}"


@dataclass(frozen=True, slots=True)
class BinConfiguration:
    """A bin configuration ``<x1|_y1, ..., xk|_yk>``."""

    groups: tuple[ConfigGroup, ...]

    @classmethod
    def of(cls, *pairs: tuple[Num, Num]) -> "BinConfiguration":
        """Build from ``(total, item_size)`` pairs."""
        return cls(groups=tuple(ConfigGroup(total=t, item_size=y) for t, y in pairs))

    @property
    def level(self) -> Num:
        """Total size of the configuration (the bin's level)."""
        total: Num = 0
        for g in self.groups:
            total = total + g.total
        return total

    @property
    def num_items(self) -> int:
        return sum(g.count for g in self.groups)

    def sizes(self) -> list[Num]:
        """Concrete item sizes, group by group."""
        out: list[Num] = []
        for g in self.groups:
            out.extend(g.sizes())
        return out

    def as_multiset(self) -> dict[Num, int]:
        """``{item_size: count}`` ignoring group boundaries."""
        counts: dict[Num, int] = {}
        for g in self.groups:
            counts[g.item_size] = counts.get(g.item_size, 0) + g.count
        return counts

    def matches(self, observed: dict[Num, int]) -> bool:
        """Whether an observed ``{size: count}`` map equals this configuration."""
        return self.as_multiset() == dict(observed)

    def __str__(self) -> str:
        return "<" + ", ".join(str(g) for g in self.groups) + ">"


_GROUP_RE = re.compile(r"^\s*(?P<total>[^|]+?)\s*\|_?\s*(?P<size>.+?)\s*$")


def _parse_number(text: str) -> Num:
    text = text.strip()
    if "/" in text:
        return Fraction(text)
    if re.fullmatch(r"[+-]?\d+", text):
        return int(text)
    return float(text)


def parse_configuration(text: str) -> BinConfiguration:
    """Parse a configuration string such as ``"<1/2|_1/2, 2/5|_1/10>"``.

    Accepts fractions (``1/3``), integers and decimals; the ``_`` after the
    bar is optional, so ``"1/2|1/2"`` also parses.
    """
    body = text.strip()
    if body.startswith("<") and body.endswith(">"):
        body = body[1:-1]
    body = body.strip()
    if not body:
        return BinConfiguration(groups=())
    groups: list[ConfigGroup] = []
    for part in body.split(","):
        m = _GROUP_RE.match(part)
        if not m:
            raise ValueError(f"malformed configuration group: {part!r}")
        groups.append(
            ConfigGroup(total=_parse_number(m.group("total")), item_size=_parse_number(m.group("size")))
        )
    return BinConfiguration(groups=tuple(groups))
