"""The engine's numeric scalar type.

Annotations throughout the engine historically used :class:`numbers.Real`,
which is the right *runtime* contract (``isinstance`` checks keep using it)
but is opaque to static type checkers: ``numbers.Real`` supports no
arithmetic operators in typeshed, so every ``arrival + duration`` would be
an error under strict mypy.  ``Num`` is the static-analysis-friendly
equivalent: the union of the concrete scalar types the engine actually
receives.  :class:`~fractions.Fraction` is included because the adversarial
constructions (Theorem 1/5 traces) drive the simulator with exact rationals
to make cost predictions replay exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TypeAlias, Union

__all__ = ["Num", "NUM_TYPES", "is_num"]

Num: TypeAlias = Union[int, float, Fraction]

#: Runtime counterpart of :data:`Num` for ``isinstance`` checks.  ``bool``
#: is a subclass of ``int`` and therefore accepted, matching the old
#: ``numbers.Real`` behaviour.
NUM_TYPES: tuple[type, ...] = (int, float, Fraction)


def is_num(value: object) -> bool:
    """Whether ``value`` is one of the engine's scalar numeric types."""
    return isinstance(value, NUM_TYPES)
