"""Streaming simulation: replay unbounded traces in O(active items) memory.

:func:`simulate` keeps the full history a
:class:`~repro.core.result.PackingResult` needs — every finalized item,
the complete assignment map, every bin's placement log — so its memory
grows with the trace.  Million-request VM traces (the DVBP evaluation
workloads) only need the *aggregates*: total rental cost, bins opened,
peak concurrency.  :func:`simulate_stream` drives the same engine with
``record=False``, consuming items lazily through the heap-merge event
stream (:func:`repro.core.events.iter_events`), and returns a compact
:class:`StreamSummary`.  Peak memory is proportional to the number of
simultaneously active items, never the trace length.

The input iterable must yield items in non-decreasing arrival order (any
generator produced by a chronological source does); an out-of-order item
raises :class:`~repro.core.events.EventOrderError`.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..algorithms.base import PackingAlgorithm
from .events import EventKind, iter_events
from .item import Item
from .simulator import Simulator

if False:  # pragma: no cover - import cycle guard for type checkers
    from .telemetry import SimulationObserver

__all__ = ["StreamSummary", "simulate_stream"]


@dataclass(frozen=True, slots=True)
class StreamSummary:
    """Aggregate outcome of a streamed simulation (no per-item history)."""

    algorithm_name: str
    capacity: numbers.Real
    cost_rate: numbers.Real
    #: Items that arrived (and departed — the stream must drain fully).
    num_items: int
    #: Bins ever opened, the paper's ``n`` in ``b_1..b_n``.
    num_bins_used: int
    #: Largest number of simultaneously open bins.
    peak_open_bins: int
    #: Total bin usage time ``sum_i len(I_i)``.
    total_bin_time: numbers.Real
    #: The MinTotal objective ``A_total = C * sum_i len(I_i)``.
    total_cost: numbers.Real
    #: Time of the last event (``None`` for an empty stream).
    end_time: numbers.Real | None

    @property
    def cost_per_item(self) -> float:
        return float(self.total_cost) / self.num_items


def simulate_stream(
    items: Iterable[Item],
    algorithm: PackingAlgorithm,
    *,
    capacity: numbers.Real = 1,
    cost_rate: numbers.Real = 1,
    strict: bool = True,
    indexed: bool = True,
    observers: Sequence["SimulationObserver"] = (),
) -> StreamSummary:
    """Stream a trace through an algorithm in O(active items) memory.

    ``items`` may be any iterable — typically a generator such as
    :func:`repro.workloads.generators.stream_trace` — yielding items in
    non-decreasing arrival order.  Items are validated as they arrive
    (positive size, fits an empty bin); duplicate ids are detected only
    against currently active items, since no global id set is kept.

    Returns a :class:`StreamSummary`; for a full
    :class:`~repro.core.result.PackingResult` use :func:`simulate`, which
    costs O(trace) memory.

    Examples
    --------
    >>> from repro import FirstFit, make_items
    >>> from repro.core.streaming import simulate_stream
    >>> summary = simulate_stream(
    ...     iter(make_items([(0, 10, 0.5), (0, 2, 0.5), (1, 3, 0.5)])),
    ...     FirstFit(),
    ... )
    >>> summary.num_bins_used, float(summary.total_cost)
    (2, 12.0)
    """
    sim = Simulator(
        algorithm,
        capacity=capacity,
        cost_rate=cost_rate,
        strict=strict,
        indexed=indexed,
        record=False,
        observers=observers,
    )
    for event in iter_events(_validated(items, capacity)):
        if event.kind is EventKind.ARRIVAL:
            sim.arrive(
                event.item.arrival,
                event.item.size,
                item_id=event.item.item_id,
                tag=event.item.tag,
            )
        else:
            sim.depart(event.item.item_id, event.item.departure)
    return sim.finish_summary()


def _validated(items: Iterable[Item], capacity: numbers.Real) -> Iterable[Item]:
    for item in items:
        if item.size > capacity:
            raise ValueError(
                f"item {item.item_id!r} has size {item.size} exceeding bin "
                f"capacity {capacity}"
            )
        yield item
