"""Streaming simulation: replay unbounded traces in O(active items) memory.

:func:`simulate` keeps the full history a
:class:`~repro.core.result.PackingResult` needs — every finalized item,
the complete assignment map, every bin's placement log — so its memory
grows with the trace.  Million-request VM traces (the DVBP evaluation
workloads) only need the *aggregates*: total rental cost, bins opened,
peak concurrency.  :func:`simulate_stream` drives the same engine with
``record=False``, consuming items lazily through the heap-merge event
stream (:func:`repro.core.events.iter_events`), and returns a compact
:class:`StreamSummary`.  Peak memory is proportional to the number of
simultaneously active items, never the trace length.

The input iterable must yield items in non-decreasing arrival order (any
generator produced by a chronological source does); an out-of-order item
raises :class:`~repro.core.events.EventOrderError`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Callable, Iterable, Protocol, Sequence

from .numeric import Num
from ..algorithms.base import PackingAlgorithm
from .events import EventKind, EventOrderError, iter_events
from .item import Item
from .resources import Size, dims_of, oversize_dimension, size_fits
from .simulator import Simulator
from .validation import OversizedItemError, ResourceDimensionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .checkpoint import StreamCheckpoint
    from .telemetry import SimulationObserver

__all__ = ["StreamRepacker", "StreamSummary", "simulate_stream"]


class StreamRepacker(Protocol):
    """Structural protocol for bounded-migration repackers.

    A repacker sits *outside* the online algorithm: the algorithm packs
    each arrival, then the repacker may call
    :meth:`~repro.core.simulator.Simulator.migrate` to consolidate open
    bins, subject to whatever migration budget it tracks internally (see
    :class:`repro.renting.BoundedRepacker`).  Hooks run synchronously
    inside event processing, before any checkpoint is shipped, so
    checkpoint/resume stays exact: a checkpoint always reflects the fully
    repacked state plus :meth:`checkpoint_state`'s budget counters.
    """

    def reset(self) -> None:
        """Clear accumulated state at the start of a fresh run."""
        ...

    def after_arrival(self, sim: "Simulator", item: Item) -> None:
        """React to ``item`` having just been placed (may migrate)."""
        ...

    def after_departure(self, sim: "Simulator", item_id: str) -> None:
        """React to ``item_id`` having just departed (may migrate)."""
        ...

    def checkpoint_state(self) -> Any:
        """JSON-serializable snapshot of budget counters."""
        ...

    def restore_state(self, state: Any) -> None:
        """Restore the state captured by :meth:`checkpoint_state`."""
        ...


@dataclass(frozen=True, slots=True)
class StreamSummary:
    """Aggregate outcome of a streamed simulation (no per-item history)."""

    algorithm_name: str
    capacity: Size
    cost_rate: Num
    #: Items that arrived (and departed — the stream must drain fully).
    num_items: int
    #: Bins ever opened, the paper's ``n`` in ``b_1..b_n``.
    num_bins_used: int
    #: Largest number of simultaneously open bins.
    peak_open_bins: int
    #: Total bin usage time ``sum_i len(I_i)``.
    total_bin_time: Num
    #: The MinTotal objective ``A_total = C * sum_i len(I_i)``.
    total_cost: Num
    #: Time of the last event (``None`` for an empty stream).
    end_time: Num | None

    @property
    def cost_per_item(self) -> Num:
        """Mean cost per item, exact when the trace is exact.

        Dividing through :class:`Fraction` keeps an int/Fraction trace's
        ratio exact; a float ``total_cost`` (inherited from float inputs)
        stays float.
        """
        return self.total_cost / Fraction(self.num_items)


def simulate_stream(
    items: Iterable[Item],
    algorithm: PackingAlgorithm,
    *,
    capacity: Size = 1,
    cost_rate: Num = 1,
    strict: bool = True,
    indexed: bool = True,
    observers: Sequence["SimulationObserver"] = (),
    checkpoint_every: int | None = None,
    on_checkpoint: "Callable[[StreamCheckpoint], None] | None" = None,
    resume_from: "StreamCheckpoint | None" = None,
    repacker: StreamRepacker | None = None,
) -> StreamSummary:
    """Stream a trace through an algorithm in O(active items) memory.

    ``items`` may be any iterable — typically a generator such as
    :func:`repro.workloads.generators.stream_trace` — yielding items in
    non-decreasing arrival order.  Items are validated as they arrive
    (positive size, fits an empty bin); duplicate ids are detected only
    against currently active items, since no global id set is kept.

    Returns a :class:`StreamSummary`; for a full
    :class:`~repro.core.result.PackingResult` use :func:`simulate`, which
    costs O(trace) memory.

    Checkpoint/resume
    -----------------
    Pass ``checkpoint_every=N`` with an ``on_checkpoint`` sink to receive a
    :class:`~repro.core.checkpoint.StreamCheckpoint` snapshot every ``N``
    processed events (always at an event boundary).  To resume an
    interrupted run, re-create the *same* source stream and pass the last
    snapshot as ``resume_from`` — the consumed prefix is skipped and the
    engine continues from the captured state, producing a summary equal to
    the uninterrupted run's.

    Bounded migration
    -----------------
    Pass a ``repacker`` (anything satisfying :class:`StreamRepacker`, e.g.
    :class:`repro.renting.BoundedRepacker`) to run in migration-bounded
    dispatch mode: after every event the repacker may move active items
    between open bins via :meth:`Simulator.migrate`, within its internal
    budget.  Repacking composes with checkpointing — pass the *same*
    repacker configuration when resuming; its counters ride in the
    checkpoint's ``repacker_state`` field.

    Examples
    --------
    >>> from repro import FirstFit, make_items
    >>> from repro.core.streaming import simulate_stream
    >>> summary = simulate_stream(
    ...     iter(make_items([(0, 10, 0.5), (0, 2, 0.5), (1, 3, 0.5)])),
    ...     FirstFit(),
    ... )
    >>> summary.num_bins_used, float(summary.total_cost)
    (2, 12.0)
    """
    if checkpoint_every is not None or on_checkpoint is not None or resume_from is not None:
        return _simulate_stream_checkpointed(
            items,
            algorithm,
            capacity=capacity,
            cost_rate=cost_rate,
            strict=strict,
            indexed=indexed,
            observers=observers,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
            resume_from=resume_from,
            repacker=repacker,
        )
    sim = Simulator(
        algorithm,
        capacity=capacity,
        cost_rate=cost_rate,
        strict=strict,
        indexed=indexed,
        record=False,
        observers=observers,
    )
    if repacker is not None:
        repacker.reset()
    for event in iter_events(_validated(items, capacity)):
        if event.kind is EventKind.ARRIVAL:
            sim.arrive(
                event.item.arrival,
                event.item.size,
                item_id=event.item.item_id,
                tag=event.item.tag,
            )
            if repacker is not None:
                repacker.after_arrival(sim, event.item)
        else:
            sim.depart(event.item.item_id, event.item.departure)
            if repacker is not None:
                repacker.after_departure(sim, event.item.item_id)
    return sim.finish_summary()


def _simulate_stream_checkpointed(
    items: Iterable[Item],
    algorithm: PackingAlgorithm,
    *,
    capacity: Size,
    cost_rate: Num,
    strict: bool,
    indexed: bool,
    observers: Sequence["SimulationObserver"],
    checkpoint_every: int | None,
    on_checkpoint: "Callable[[StreamCheckpoint], None] | None",
    resume_from: "StreamCheckpoint | None",
    repacker: StreamRepacker | None,
) -> StreamSummary:
    """The checkpoint-aware streaming driver.

    Replicates :func:`repro.core.events.iter_events`' merge order exactly
    (departures before arrivals at equal times, both heap-ordered by
    ``(time, source position)``) while tracking the consumed-item count and
    the pending-departure heap — the two pieces of merge state a
    :class:`~repro.core.checkpoint.StreamCheckpoint` needs beyond the
    engine itself.
    """
    from .checkpoint import CheckpointError, StreamCheckpoint

    if (checkpoint_every is None) != (on_checkpoint is None):
        raise ValueError(
            "checkpoint_every and on_checkpoint must be given together"
        )
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")

    if resume_from is not None:
        sim, pending = resume_from.restore(
            algorithm, strict=strict, indexed=indexed, observers=observers
        )
        consumed = resume_from.items_consumed
        events = resume_from.events_processed
        last_arrival = resume_from.last_arrival
        if repacker is not None:
            repacker.restore_state(resume_from.repacker_state)
        elif resume_from.repacker_state is not None:
            raise CheckpointError(
                "checkpoint was taken in migration-bounded mode; pass the "
                "same repacker configuration to resume"
            )
    else:
        sim = Simulator(
            algorithm,
            capacity=capacity,
            cost_rate=cost_rate,
            strict=strict,
            indexed=indexed,
            record=False,
            observers=observers,
        )
        pending = []
        consumed = 0
        events = 0
        last_arrival = None
        if repacker is not None:
            repacker.reset()

    source = iter(items)
    _missing = object()
    for _ in range(consumed):
        if next(source, _missing) is _missing:
            raise CheckpointError(
                f"source stream ended before the checkpoint position "
                f"({consumed} items); resume needs the same stream"
            )

    def ship_checkpoint() -> None:
        if checkpoint_every is not None and events % checkpoint_every == 0:
            assert on_checkpoint is not None  # validated above: given together
            on_checkpoint(
                StreamCheckpoint.capture(
                    sim,
                    pending,
                    consumed,
                    events,
                    last_arrival,
                    repacker_state=(
                        None if repacker is None else repacker.checkpoint_state()
                    ),
                )
            )

    for item in source:
        _check_fits(item, capacity)
        if last_arrival is not None and item.arrival < last_arrival:
            raise EventOrderError(
                f"item {item.item_id!r} arrives at {item.arrival}, before the "
                f"previous arrival at {last_arrival}; streamed items must have "
                "non-decreasing arrival times",
                item_id=item.item_id,
            )
        last_arrival = item.arrival
        while pending and pending[0][0] <= item.arrival:
            dep_time, _, dep_id = heapq.heappop(pending)
            sim.depart(dep_id, dep_time)
            if repacker is not None:
                repacker.after_departure(sim, dep_id)
            events += 1
            ship_checkpoint()
        seq = consumed  # the item's 0-based source position
        consumed += 1
        sim.arrive(item.arrival, item.size, item_id=item.item_id, tag=item.tag)
        if repacker is not None:
            repacker.after_arrival(sim, item)
        heapq.heappush(pending, (item.departure, seq, item.item_id))
        events += 1
        ship_checkpoint()
    while pending:
        dep_time, _, dep_id = heapq.heappop(pending)
        sim.depart(dep_id, dep_time)
        if repacker is not None:
            repacker.after_departure(sim, dep_id)
        events += 1
        ship_checkpoint()
    return sim.finish_summary()


def _check_fits(item: Item, capacity: Size) -> None:
    try:
        fits = size_fits(item.size, capacity)
    except TypeError:
        raise ResourceDimensionError(
            dims_of(capacity), item.dims, item_id=item.item_id
        ) from None
    if not fits:
        raise OversizedItemError(
            item.size,
            capacity,
            item_id=item.item_id,
            dimension=oversize_dimension(item.size, capacity),
        )


def _validated(items: Iterable[Item], capacity: Size) -> Iterable[Item]:
    for item in items:
        _check_fits(item, capacity)
        yield item
