"""Checkpoint/resume for streamed simulations.

A million-item streamed run (:func:`repro.core.streaming.simulate_stream`)
used to be all-or-nothing: any interruption — a preempted worker, a crash,
a deploy — threw the whole pass away.  This module makes the streaming
engine restartable: at any event boundary the complete engine state fits
in O(active sessions) space — open bins (index, capacity, label, opening
time, exact level), active items with their pending departure times and
source positions, the aggregate counters, observer state, and any mutable
algorithm state — and a :class:`StreamCheckpoint` captures it as a
JSON-serializable snapshot.

Resuming replays nothing: the caller re-creates the *same* source stream
(same generator, same seed), :func:`repro.core.streaming.simulate_stream`
skips the already-consumed prefix, reconstructs the engine from the
snapshot, and continues.  The resumed run is **exact**: every float is
restored bit for bit (bin levels are stored rather than re-summed, since
float addition is order-sensitive), so the final
:class:`~repro.core.streaming.StreamSummary` equals the uninterrupted
run's — asserted by the differential tests.

Scope: checkpoints cover the ``record=False`` streaming mode only (the
full-history mode would need the entire trace anyway), and values must be
JSON-representable — ``float``/``int`` times and sizes, JSON-able bin
labels and item tags.  Algorithms restore via
:meth:`~repro.algorithms.base.PackingAlgorithm.restore_state`; the stock
family (FF/BF/MFF/MBF, Next Fit) is exact.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import asdict, dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Sequence

from .numeric import Num
from .bin import Bin
from .resources import Resources, Size
from .simulator import Simulator, _ActiveItem
from .telemetry import SimulationObserver
from .validation import CheckpointFormatError, CheckpointSchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..algorithms.base import PackingAlgorithm

#: One ``(departure, seq, item_id)`` entry of the streaming departure heap.
PendingEntry = tuple[Num, int, str]

__all__ = [
    "CheckpointError",
    "StreamCheckpoint",
    "CHECKPOINT_VERSION",
    "CHECKPOINT_SCHEMA_VERSION",
]

#: Bumped whenever the snapshot layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: Version stamp of the *JSON payload* layout (field encoding, type tags).
#: Distinct from :data:`CHECKPOINT_VERSION`, which versions the captured
#: engine state: a payload written under a different schema fails loudly in
#: :meth:`StreamCheckpoint.from_json` with a typed
#: :class:`~repro.core.validation.CheckpointSchemaError` instead of
#: mis-restoring.  Bumped to 2 when ``schema_version`` stamping and exact
#: ``Fraction`` tagging were added.
CHECKPOINT_SCHEMA_VERSION = 2


class CheckpointError(RuntimeError):
    """Raised for unusable checkpoints (mismatched run, truncated source)."""


@dataclass(frozen=True, slots=True)
class StreamCheckpoint:
    """Complete engine state of a streamed run at one event boundary.

    Build one with :meth:`capture` (normally done for you by
    ``simulate_stream(..., checkpoint_every=N, on_checkpoint=sink)``),
    persist it with :meth:`to_json`, and hand it back to
    ``simulate_stream(..., resume_from=...)`` together with a fresh
    instance of the same source stream.
    """

    algorithm_name: str
    capacity: Size
    cost_rate: Num
    #: Items pulled from the source stream so far; the resume skips these.
    items_consumed: int
    #: Arrival + departure events processed so far.
    events_processed: int
    #: Last arrival time seen (stream-order validation resumes from here).
    last_arrival: Num | None
    now: Num | None
    auto_id: int
    bins_opened: int
    peak_open: int
    items_arrived: int
    closed_bin_time: Num
    #: Open bins in opening order: (index, capacity, label, opened_at, level).
    bins: tuple[dict[str, Any], ...]
    #: Active items: (item_id, size, arrival, tag, departure, seq, bin).
    active: tuple[dict[str, Any], ...]
    #: Per-observer ``checkpoint_state()`` payloads, positionally aligned.
    observers: tuple[Any, ...]
    algorithm_state: Any = None
    #: ``checkpoint_state()`` of the bounded-migration repacker, if one was
    #: driving the run (``None`` otherwise).  Migrated item→bin membership
    #: itself needs no extra state: ``active`` already records the *current*
    #: bin of every item.
    repacker_state: Any = None
    version: int = CHECKPOINT_VERSION

    # ---------------------------------------------------------------- capture

    @classmethod
    def capture(
        cls,
        sim: Simulator,
        pending: Sequence[PendingEntry],
        items_consumed: int,
        events_processed: int,
        last_arrival: Num | None,
        repacker_state: Any = None,
    ) -> "StreamCheckpoint":
        """Snapshot a live streaming simulator at an event boundary.

        ``pending`` is the streaming driver's departure heap of
        ``(departure, seq, item_id)`` entries for every active item.
        """
        if sim._record:
            raise CheckpointError(
                "checkpoints cover streaming (record=False) simulations only"
            )
        departure_of = {item_id: (dep, seq) for dep, seq, item_id in pending}
        active: list[dict[str, Any]] = []
        for item_id, record in sim._active.items():
            dep, seq = departure_of[item_id]
            view = record.view
            active.append(
                {
                    "item_id": item_id,
                    "size": view.size,
                    "arrival": view.arrival,
                    "tag": view.tag,
                    "departure": dep,
                    "seq": seq,
                    "bin": record.bin.index,
                }
            )
        bins = tuple(
            {
                "index": b.index,
                "capacity": b.capacity,
                "label": b.label,
                "opened_at": b.opened_at,
                "level": b.level,
            }
            for b in sim._bins  # iteration is opening order
        )
        return cls(
            algorithm_name=sim.algorithm.name,
            capacity=sim.capacity,
            cost_rate=sim.cost_rate,
            items_consumed=items_consumed,
            events_processed=events_processed,
            last_arrival=last_arrival,
            now=sim._now,
            auto_id=sim._auto_id,
            bins_opened=sim._bins_opened,
            peak_open=sim._peak_open,
            items_arrived=sim._items_arrived,
            closed_bin_time=sim._closed_bin_time,
            bins=bins,
            active=tuple(active),
            observers=tuple(o.checkpoint_state() for o in sim.observers),
            algorithm_state=sim.algorithm.checkpoint_state(),
            repacker_state=repacker_state,
        )

    # ---------------------------------------------------------------- restore

    def restore(
        self,
        algorithm: "PackingAlgorithm",
        *,
        strict: bool = True,
        indexed: bool = True,
        observers: Sequence[SimulationObserver] = (),
    ) -> tuple[Simulator, list[PendingEntry]]:
        """Reconstruct the simulator and the pending-departure heap.

        ``algorithm`` must be a fresh instance of the checkpointed
        algorithm (matched by registry name); ``observers`` must be fresh
        instances positionally matching the checkpointed ones — their
        state is restored via ``restore_state``.
        """
        from ..algorithms.base import Arrival

        if self.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {self.version} is not supported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        if algorithm.name != self.algorithm_name:
            raise CheckpointError(
                f"checkpoint was taken with algorithm "
                f"{self.algorithm_name!r}, cannot resume with {algorithm.name!r}"
            )
        if len(observers) != len(self.observers):
            raise CheckpointError(
                f"checkpoint has state for {len(self.observers)} observers, "
                f"got {len(observers)}"
            )
        sim = Simulator(
            algorithm,
            capacity=self.capacity,
            cost_rate=self.cost_rate,
            strict=strict,
            indexed=indexed,
            record=False,
            observers=observers,
        )
        bins_by_index: dict[int, Bin] = {
            state["index"]: Bin(
                index=state["index"],
                capacity=state["capacity"],
                label=state["label"],
                record_log=False,
            )
            for state in self.bins
        }
        pending: list[PendingEntry] = []
        for entry in self.active:
            target = bins_by_index[entry["bin"]]
            view = Arrival(
                item_id=entry["item_id"],
                size=entry["size"],
                arrival=entry["arrival"],
                tag=entry["tag"],
            )
            target.add(view, entry["arrival"])
            sim._active[entry["item_id"]] = _ActiveItem(view=view, bin=target)
            pending.append((entry["departure"], entry["seq"], entry["item_id"]))
        heapq.heapify(pending)
        for state in self.bins:  # opening order: index insertion order matters
            target = bins_by_index[state["index"]]
            target.opened_at = state["opened_at"]
            # Exact level, not the re-added sum: float addition is
            # order-sensitive and fit decisions compare residuals exactly.
            target._level = state["level"]
            sim._bins.add(target)
        sim._now = self.now
        sim._auto_id = self.auto_id
        sim._bins_opened = self.bins_opened
        sim._peak_open = self.peak_open
        sim._items_arrived = self.items_arrived
        sim._closed_bin_time = self.closed_bin_time
        for observer, state in zip(observers, self.observers):
            if state is not None:
                observer.restore_state(state)
        algorithm.restore_state(self.algorithm_state, bins_by_index)
        return sim, pending

    # ---------------------------------------------------------- serialization

    def to_json(self) -> str:
        """Serialize to JSON (floats round-trip exactly).

        The payload is stamped with :data:`CHECKPOINT_SCHEMA_VERSION` so a
        future layout change fails loudly on restore.  Vector
        sizes/capacities/levels are tagged as ``{"__resources__": [...]}``
        and exact rationals as ``{"__fraction__": [num, den]}`` so
        :meth:`from_json` restores :class:`~repro.core.resources.Resources`
        and :class:`~fractions.Fraction` values bit for bit.
        """
        payload = asdict(self)
        payload["schema_version"] = CHECKPOINT_SCHEMA_VERSION
        return json.dumps(payload, sort_keys=True, default=_encode_json)

    @classmethod
    def from_json(cls, text: str) -> "StreamCheckpoint":
        """Parse a :meth:`to_json` payload.

        Malformed or truncated input raises a typed
        :class:`~repro.core.validation.CheckpointFormatError`; a payload
        written under a different schema version raises
        :class:`~repro.core.validation.CheckpointSchemaError`.  Neither
        leaks bare ``json.JSONDecodeError``/``KeyError``/``TypeError``.
        """
        try:
            payload = json.loads(text, object_hook=_decode_json)
        except json.JSONDecodeError as exc:
            raise CheckpointFormatError(f"not valid JSON ({exc})") from exc
        if not isinstance(payload, dict):
            raise CheckpointFormatError(
                f"expected a JSON object, got {type(payload).__name__}"
            )
        schema = payload.pop("schema_version", None)
        if schema != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointSchemaError(
                expected=CHECKPOINT_SCHEMA_VERSION, got=schema
            )
        try:
            payload["bins"] = tuple(payload["bins"])
            payload["active"] = tuple(payload["active"])
            payload["observers"] = tuple(payload["observers"])
            return cls(**payload)
        except (KeyError, TypeError) as exc:
            raise CheckpointFormatError(
                f"missing or malformed checkpoint fields ({exc})"
            ) from exc


def _encode_json(obj: Any) -> Any:
    if isinstance(obj, Resources):
        return {"__resources__": list(obj.values)}
    if isinstance(obj, Fraction):
        return {"__fraction__": [obj.numerator, obj.denominator]}
    raise TypeError(f"Object of type {type(obj).__name__} is not JSON serializable")


def _decode_json(obj: dict[str, Any]) -> Any:
    if len(obj) == 1 and "__resources__" in obj:
        return Resources(*obj["__resources__"])
    if len(obj) == 1 and "__fraction__" in obj:
        num, den = obj["__fraction__"]
        return Fraction(num, den)
    return obj
