"""Packing results: everything a finished simulation knows.

A :class:`PackingResult` records the finalized items, the bin each item was
assigned to, and every bin's full usage history.  From it one can compute
the paper's objective ``A_total(R) = ∫ A(R,t)·C dt`` exactly (the number of
open bins is piecewise constant, and each bin contributes exactly
``usage length × C``), the classic DBP objective ``max_t A(R,t)``, and all
the proof artifacts of Figures 4-8.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from .numeric import Num
from .interval import Interval
from .resources import Size
from .item import Item

if TYPE_CHECKING:  # pragma: no cover
    from .cost import CostModel

__all__ = ["BinRecord", "PackingResult"]


@dataclass(frozen=True, slots=True)
class BinRecord:
    """Immutable record of one bin's complete life."""

    index: int
    label: Any
    opened_at: Num
    closed_at: Num
    #: ``(time, item_id)`` placements in chronological order.
    assignments: tuple[tuple[Num, str], ...]
    #: This bin's own capacity; ``None`` means the packing-wide default
    #: (heterogeneous-fleet algorithms open bins of varying capacity).
    capacity: Size | None = None

    @property
    def usage_length(self) -> Num:
        """``len(I_i)``: how long the bin stayed open."""
        return self.closed_at - self.opened_at

    def usage_interval(self) -> Interval:
        """The usage period ``I_i`` as an interval."""
        return Interval(self.opened_at, self.closed_at)

    @property
    def item_ids(self) -> tuple[str, ...]:
        return tuple(item_id for _, item_id in self.assignments)


@dataclass(frozen=True, slots=True)
class PackingResult:
    """Outcome of packing an item list with an online algorithm."""

    algorithm_name: str
    capacity: Size
    cost_rate: Num
    items: tuple[Item, ...]
    #: item_id -> bin index
    assignment: dict[str, int]
    bins: tuple[BinRecord, ...]
    _profile_cache: dict[str, Any] = field(default_factory=dict, repr=False, compare=False)

    # ----------------------------------------------------------------- costs

    def total_cost(self, cost_model: "CostModel | None" = None) -> Num:
        """The paper's ``A_total(R)``.

        With the default continuous model this is
        ``cost_rate * Σ_i len(I_i)``, which equals ``∫ n(t)·C dt`` exactly.
        Pass a :class:`~repro.core.cost.CostModel` (e.g. hourly billing) for
        alternative pricing.
        """
        if cost_model is None:
            total: Num = 0
            for b in self.bins:
                total = total + b.usage_length
            return total * self.cost_rate
        total = 0
        for b in self.bins:
            total = total + cost_model.bin_cost(b.usage_length)
        return total

    @property
    def total_bin_time(self) -> Num:
        """``Σ_i len(I_i)``: total bin usage time (cost at unit rate)."""
        total: Num = 0
        for b in self.bins:
            total = total + b.usage_length
        return total

    @property
    def num_bins_used(self) -> int:
        """Total number of distinct bins ever opened."""
        return len(self.bins)

    # ------------------------------------------------------------ n(t) curve

    def bin_count_profile(self) -> tuple[list[Num], list[int]]:
        """The step function ``A(R,t)``: (breakpoints, counts).

        ``counts[i]`` is the number of open bins on ``[times[i],
        times[i+1])``; the final count is always 0.  A bin is counted open
        on ``[opened_at, closed_at)`` so that the integral of the profile
        equals :attr:`total_bin_time` exactly.
        """
        if "profile" in self._profile_cache:
            return self._profile_cache["profile"]
        deltas: dict[Num, int] = {}
        for b in self.bins:
            deltas[b.opened_at] = deltas.get(b.opened_at, 0) + 1
            deltas[b.closed_at] = deltas.get(b.closed_at, 0) - 1
        times = sorted(deltas)
        counts: list[int] = []
        running = 0
        for t in times:
            running += deltas[t]
            counts.append(running)
        self._profile_cache["profile"] = (times, counts)
        return times, counts

    def num_open_bins(self, t: Num) -> int:
        """``A(R,t)``: open-bin count at time ``t`` (right-continuous)."""
        times, counts = self.bin_count_profile()
        idx = bisect_right(times, t) - 1
        if idx < 0:
            return 0
        return counts[idx]

    @property
    def max_bins_used(self) -> int:
        """The classic DBP objective: ``max_t A(R,t)``."""
        _, counts = self.bin_count_profile()
        return max(counts, default=0)

    # --------------------------------------------------------------- lookups

    def item_by_id(self, item_id: str) -> Item:
        if "by_id" not in self._profile_cache:
            self._profile_cache["by_id"] = {it.item_id: it for it in self.items}
        return self._profile_cache["by_id"][item_id]

    def bin_of(self, item_id: str) -> BinRecord:
        """The bin record that the given item was assigned to."""
        return self.bins[self.assignment[item_id]]

    def items_in_bin(self, bin_index: int) -> list[Item]:
        """The paper's ``R_i``: all items ever assigned to bin ``i``."""
        record = self.bins[bin_index]
        return [self.item_by_id(item_id) for item_id in record.item_ids]

    def bin_capacity(self, record: BinRecord) -> Size:
        """A bin's effective capacity (its own, or the packing default)."""
        return self.capacity if record.capacity is None else record.capacity

    @property
    def total_capacity_time(self) -> Size:
        """``Σ_i W_i·len(I_i)``: paid capacity-time (= W·Σlen for uniform
        bins; per-dimension for vector bins)."""
        total: Size = 0
        for b in self.bins:
            total = total + self.bin_capacity(b) * b.usage_length
        return total

    # ------------------------------------------------------------ invariants

    def check_invariants(self, *, tolerance: float = 1e-9) -> None:
        """Verify structural invariants; raises ``AssertionError`` on failure.

        Checks: every item assigned exactly once; bin usage period covers
        the intervals of its items (``I_i = ∪_{r∈R_i} I(r)``, so the union
        of item intervals equals the usage period); level never exceeded
        capacity (replayed); span of R_i equals usage length.
        """
        from .interval import union_length

        assert set(self.assignment) == {it.item_id for it in self.items}, (
            "assignment does not cover exactly the item set"
        )
        for b in self.bins:
            items = self.items_in_bin(b.index)
            assert items, f"bin {b.index} has no items"
            assert min(it.arrival for it in items) == b.opened_at, (
                f"bin {b.index} opened_at mismatch"
            )
            assert max(it.departure for it in items) == b.closed_at, (
                f"bin {b.index} closed_at mismatch"
            )
            covered = union_length([Interval(it.arrival, it.departure) for it in items])
            assert abs(covered - b.usage_length) <= tolerance * max(1, abs(b.usage_length)), (
                f"bin {b.index} usage period not the union of its item intervals"
            )
            # Replay levels at each assignment instant.
            cap = self.bin_capacity(b)
            for t, item_id in b.assignments:
                level = sum(
                    it.size
                    for it in items
                    if it.arrival <= t < it.departure
                )
                assert level <= cap + tolerance, (
                    f"bin {b.index} over capacity at t={t}: level {level} > {cap}"
                )
