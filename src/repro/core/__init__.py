"""Core MinTotal DBP model: items, bins, events, simulator, metrics, costs."""

from .bin import Bin, BinAssignment, BinClosedError, CapacityExceededError
from .bin_index import ANY_LABEL, OpenBinIndex, OpenBinView
from .checkpoint import CHECKPOINT_VERSION, CheckpointError, StreamCheckpoint
from .config_notation import BinConfiguration, ConfigGroup, parse_configuration
from .cost import ContinuousCost, CostModel, QuantizedCost
from .events import (
    Event,
    EventKind,
    EventOrderError,
    compile_events,
    event_times,
    iter_events,
)
from .interval import (
    Interval,
    interval_difference,
    intervals_overlap,
    merge_intervals,
    span,
    union_length,
)
from .item import Item, make_items, validate_items
from .metrics import (
    TraceStats,
    interval_ratio,
    max_interval_length,
    min_interval_length,
    total_demand,
    trace_span,
    trace_stats,
    utilization,
)
from .result import BinRecord, PackingResult
from .simulator import SimulationError, Simulator, simulate
from .streaming import StreamSummary, simulate_stream
from .telemetry import SimulationObserver, TelemetryCollector
from .validation import (
    DuplicateItemIdError,
    EmptySweepError,
    InvalidIntervalError,
    InvalidItemSizeError,
    OversizedItemError,
    TraceValidationError,
)

__all__ = [
    "Item",
    "make_items",
    "validate_items",
    "Interval",
    "merge_intervals",
    "union_length",
    "span",
    "intervals_overlap",
    "interval_difference",
    "Bin",
    "BinAssignment",
    "BinClosedError",
    "CapacityExceededError",
    "BinConfiguration",
    "ConfigGroup",
    "parse_configuration",
    "Event",
    "EventKind",
    "EventOrderError",
    "iter_events",
    "compile_events",
    "event_times",
    "ANY_LABEL",
    "OpenBinIndex",
    "OpenBinView",
    "CostModel",
    "ContinuousCost",
    "QuantizedCost",
    "BinRecord",
    "PackingResult",
    "Simulator",
    "simulate",
    "simulate_stream",
    "StreamSummary",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "StreamCheckpoint",
    "SimulationError",
    "SimulationObserver",
    "TelemetryCollector",
    "TraceValidationError",
    "InvalidItemSizeError",
    "InvalidIntervalError",
    "OversizedItemError",
    "DuplicateItemIdError",
    "EmptySweepError",
    "TraceStats",
    "trace_stats",
    "trace_span",
    "total_demand",
    "interval_ratio",
    "min_interval_length",
    "max_interval_length",
    "utilization",
]
