"""Bins (game-server VMs) of the MinTotal DBP model.

A bin is opened when its first item is placed and closed when its last item
departs; its cost is ``cost_rate * (closed_at - opened_at)``.  Bins record a
full assignment log so that the proof-machinery analyses (Figures 4-8 of the
paper) can be computed after a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol

from .numeric import Num
from .resources import Size

if TYPE_CHECKING:  # pragma: no cover
    from .interval import Interval

__all__ = [
    "Bin",
    "BinAssignment",
    "BinClosedError",
    "CapacityExceededError",
    "PackedItem",
]


class PackedItem(Protocol):
    """What a bin needs to know about an item it holds.

    Structural: satisfied both by the full :class:`~repro.core.item.Item`
    (offline record, has a departure) and by the online
    :class:`~repro.algorithms.base.Arrival` view (no departure) that the
    simulator actually stores in bins.  Bins never read departure times —
    that is the online model's whole point — so the protocol omits them.
    """

    @property
    def item_id(self) -> str: ...

    @property
    def size(self) -> Size: ...

    @property
    def arrival(self) -> Num: ...

    @property
    def tag(self) -> Any: ...


class BinClosedError(RuntimeError):
    """Raised when an operation targets a bin that has already closed."""


class CapacityExceededError(ValueError):
    """Raised when a placement would push a bin above its capacity."""


@dataclass(frozen=True, slots=True)
class BinAssignment:
    """One ``(time, item)`` placement event recorded in a bin's log."""

    time: Num
    item: PackedItem


@dataclass(eq=False, slots=True)
class Bin:
    """A single bin with capacity ``W`` and its usage history.

    Attributes
    ----------
    index:
        0-based opening order (the paper's subscript of ``b_i``, offset by
        one).  Bins opened earlier have smaller indices, which is what
        First Fit's "earliest opened bin" rule inspects.
    capacity:
        Bin capacity ``W``.
    label:
        Algorithm-private annotation; Modified First Fit uses it to keep
        large-item and small-item bins in separate pools.
    """

    index: int
    capacity: Size
    label: Any = None
    opened_at: Num | None = None
    closed_at: Num | None = None
    _contents: dict[str, PackedItem] = field(default_factory=dict, repr=False)
    _level: Size = 0
    assignments: list[BinAssignment] = field(default_factory=list, repr=False)
    #: When false, skip the assignment log — the streaming engine's
    #: O(active)-memory mode (the log is the only per-bin state that grows
    #: with every item ever placed rather than with current occupancy).
    record_log: bool = True

    # ------------------------------------------------------------------ state

    @property
    def level(self) -> Size:
        """Current level: total size of the items in the bin (per-dimension
        for vector bins)."""
        return self._level

    @property
    def residual(self) -> Size:
        """Remaining capacity ``W - level`` (per-dimension for vector bins)."""
        return self.capacity - self._level

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None and self.closed_at is None

    @property
    def is_closed(self) -> bool:
        return self.closed_at is not None

    @property
    def is_empty(self) -> bool:
        return not self._contents

    @property
    def num_items(self) -> int:
        return len(self._contents)

    def items(self) -> list[PackedItem]:
        """The items currently in the bin (arbitrary but stable order)."""
        return list(self._contents.values())

    def contains(self, item_id: str) -> bool:
        return item_id in self._contents

    def fits(self, item: PackedItem) -> bool:
        """Whether ``item`` fits in the current residual capacity.

        Exact comparison — callers working with floats should construct
        instances whose sizes are exactly representable (the provided
        adversaries do), as the paper's analysis is exact.  For vector
        bins this is *dominance*: the item must fit in every dimension.
        """
        return item.size <= self.residual

    # ------------------------------------------------------------ transitions

    def add(self, item: PackedItem, time: Num) -> None:
        """Place ``item`` into the bin at ``time``.

        Opens the bin if this is its first item.  Raises
        :class:`CapacityExceededError` if the item does not fit — packing
        algorithms must check :meth:`fits` first, and the simulator treats a
        violation as an algorithm bug rather than silently accepting it.
        """
        if self.is_closed:
            raise BinClosedError(f"bin {self.index} is closed; cannot add {item.item_id}")
        if not self.fits(item):
            # Dominance is a partial order: "does not fit" must be spelled
            # not-fits, not size > residual (incomparable vectors are
            # neither).
            raise CapacityExceededError(
                f"item {item.item_id} (size {item.size}) does not fit in bin "
                f"{self.index} (residual {self.residual})"
            )
        if item.item_id in self._contents:
            raise ValueError(f"item {item.item_id} already in bin {self.index}")
        if self.opened_at is None:
            self.opened_at = time
        self._contents[item.item_id] = item
        self._level = self._level + item.size
        if self.record_log:
            self.assignments.append(BinAssignment(time=time, item=item))

    def force_close(self, time: Num) -> list[PackedItem]:
        """Forcibly close the bin at ``time``, evicting every current item.

        Models a server failure (spot preemption, crash): the bin's usage
        period ends now regardless of occupancy.  Returns the evicted items
        in placement order; the caller (typically
        :meth:`~repro.core.simulator.Simulator.fail_bin`) is responsible for
        re-dispatching or discarding them.
        """
        if self.is_closed:
            raise BinClosedError(f"bin {self.index} is already closed")
        if self.opened_at is None:
            raise BinClosedError(f"bin {self.index} was never opened")
        evicted = list(self._contents.values())
        self._contents.clear()
        self._level = 0
        self.closed_at = time
        return evicted

    def remove(self, item_id: str, time: Num) -> PackedItem:
        """Remove a departing item; closes the bin if it becomes empty."""
        if self.is_closed:
            raise BinClosedError(f"bin {self.index} is closed; cannot remove {item_id}")
        try:
            item = self._contents.pop(item_id)
        except KeyError:
            raise KeyError(f"item {item_id} is not in bin {self.index}") from None
        self._level = self._level - item.size
        if not self._contents:
            self._level = 0  # clear float residue exactly on emptiness
            self.closed_at = time
        return item

    # -------------------------------------------------------------- reporting

    @property
    def usage_length(self) -> Num:
        """Length of the usage period ``len(I_i)`` (requires a closed bin)."""
        if self.opened_at is None or self.closed_at is None:
            raise BinClosedError(f"bin {self.index} has no complete usage period yet")
        return self.closed_at - self.opened_at

    def usage_interval(self) -> "Interval":
        """The usage period ``I_i = [I_i^-, I_i^+]`` as an interval."""
        from .interval import Interval

        if self.opened_at is None or self.closed_at is None:
            raise BinClosedError(f"bin {self.index} has no complete usage period yet")
        return Interval(self.opened_at, self.closed_at)

    def assigned_items(self) -> list[PackedItem]:
        """Every item ever assigned to this bin (the paper's ``R_i``)."""
        return [a.item for a in self.assignments]

    def configuration(self) -> dict[Size, int]:
        """Current bin configuration as ``{size: count}``.

        This realises the paper's ``<x1|_y1, ..., xk|_yk>`` notation (see
        :mod:`repro.core.config_notation` for parsing/formatting).
        """
        config: dict[Num, int] = {}
        for item in self._contents.values():
            config[item.size] = config.get(item.size, 0) + 1
        return config
