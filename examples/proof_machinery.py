#!/usr/bin/env python
"""Walk through the Theorem 4/5 proof machinery on a concrete packing.

The paper's Figures 4-8 define a decomposition of every First Fit packing:
usage periods split into I^L/I^R, sub-periods, reference points/bins, and
(auxiliary) reference windows.  This example computes all of it on a
workload and prints the structure, then verifies every feature, lemma and
inequality of Section 4.3.

Run:  python examples/proof_machinery.py
"""

from repro import FirstFit, simulate
from repro.analysis import decompose_first_fit, render_table, verify_decomposition
from repro.core.metrics import trace_stats
from repro.workloads import Clipped, Exponential, Uniform, generate_trace

trace = generate_trace(
    arrival_rate=3.0,
    horizon=60.0,
    duration=Clipped(Exponential(3.0), 1.0, 8.0),
    size=Uniform(0.05, 0.24),  # all sizes < W/4: Theorem 4's k=4 regime
    seed=7,
)
result = simulate(trace.items, FirstFit())
stats = trace_stats(trace.items)
print(f"{len(trace)} items, mu = {stats.mu:.3g}, Delta = {stats.min_interval:.3g}; "
      f"First Fit used {result.num_bins_used} bins")

dec = decompose_first_fit(result)

# --- Figure 4: the I^L / I^R split ------------------------------------------
rows = []
for i, usage in enumerate(dec.usage[:8]):
    left = dec.left_parts[i]
    right = dec.right_parts[i]
    rows.append(
        [
            i,
            f"[{usage.left:.2f}, {usage.right:.2f}]",
            f"{dec.closers[i]:.2f}",
            "-" if left is None else f"[{left.left:.2f}, {left.right:.2f}]",
            "-" if right is None else f"[{right.left:.2f}, {right.right:.2f}]",
        ]
    )
print()
print(render_table(["bin", "I_i", "E_i", "I_i^L", "I_i^R"], rows,
                   title="Figure 4: usage-period decomposition (first 8 bins)"))
print(f"\nequation (5): sum len(I^R) = {float(dec.total_right_length()):.4f} "
      f"== span(R) = {float(stats.span):.4f}")

# --- Figures 5-6: sub-periods and reference structure ------------------------
rows = []
for sp in dec.subperiods[:10]:
    rows.append(
        [
            f"I_({sp.bin_index},{sp.j})",
            f"[{sp.interval.left:.2f}, {sp.interval.right:.2f}]",
            f"{sp.ref_time:.2f}",
            sp.ref_bin_index,
        ]
    )
if rows:
    print()
    print(render_table(
        ["sub-period", "interval", "t_(i,j)", "reference bin b†"],
        rows,
        title="Figures 5-6: sub-periods with reference points and bins (first 10)",
    ))

# --- Figure 7: the pairing ----------------------------------------------------
joints, singles, lonely = dec.build_pairs()
print(f"\nFigure 7 pairing: {len(joints)} joint-periods, {len(singles)} single "
      f"periods, {len(lonely)} non-intersecting periods")

# --- full verification --------------------------------------------------------
report = verify_decomposition(dec, small_k=4)
print(f"\nTable 2 case census: {report.case_counts}")
if report.all_ok:
    print("ALL claims verified: eq. (5)/(7), features (f.1)-(f.5), Lemmas 1-5, "
          "inequalities (8)/(11)/(14)/(15), cost bound (10).")
else:
    print("VIOLATIONS FOUND (this would contradict the paper!):")
    for v in report.violations:
        print("  -", v)
