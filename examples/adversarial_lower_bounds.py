#!/usr/bin/env python
"""The paper's lower-bound constructions, run live.

Reproduces Figure 2 (Theorem 1: every Any Fit algorithm is at best
μ-competitive) and Figure 3 (Theorem 2: Best Fit is unboundedly bad), with
exact Fraction arithmetic, and shows First Fit escaping the Best Fit trap.

Run:  python examples/adversarial_lower_bounds.py
"""

from repro import FirstFit, simulate
from repro.adversaries import (
    predicted_anyfit_ratio,
    run_theorem1_adversary,
    run_theorem2_adversary,
)
from repro.algorithms import BestFit, LastFit, WorstFit
from repro.analysis import render_table

# --- Theorem 1 / Figure 2 ---------------------------------------------------

print("Theorem 1 (Figure 2): k^2 items of size 1/k; departures leave one per bin.")
mu = 16
rows = []
for algo in (FirstFit(), BestFit(), WorstFit(), LastFit()):
    for k in (2, 4, 16, 64):
        out = run_theorem1_adversary(algo, k=k, mu=mu)
        rows.append(
            [
                algo.name,
                k,
                f"{float(out.measured_ratio):.4f}",
                f"{float(predicted_anyfit_ratio(k, mu)):.4f}",
                "exact" if out.matches_prediction else "MISMATCH",
            ]
        )
print(
    render_table(
        ["algorithm", "k", "measured ratio", "kμ/(k+μ−1)", "match"],
        rows,
        title=f"ratio -> μ = {mu} as k grows (identical for every Any Fit member)",
    )
)

# --- Theorem 2 / Figure 3 ---------------------------------------------------

print("\nTheorem 2 (Figure 3): the adaptive Best Fit trap, growing k at fixed μ = 4.")
rows = []
for k in (3, 5, 8, 12):
    out = run_theorem2_adversary(k=k, mu=4, n_iterations=max(3, k // 2 + 2))
    ff = simulate(out.result.items, FirstFit(), capacity=1)
    rows.append(
        [
            k,
            len(out.result.items),
            f"{float(out.measured_ratio_lower):.3f}",
            k / 2,
            f"{float(ff.total_cost() / out.opt.lower):.3f}",
        ]
    )
print(
    render_table(
        ["k", "items", "Best Fit ratio", "k/2 floor", "First Fit ratio (same items)"],
        rows,
        title="Best Fit grows without bound; First Fit stays near 1",
    )
)
print(
    "\nBest Fit keeps pouring each refresh group into the fullest bin, so all k\n"
    "bins stay open forever while the active volume fits in one; First Fit\n"
    "would have reused bin 1 and let the others close — exactly the paper's point."
)
