#!/usr/bin/env python
"""The paper's motivating scenario: dispatching cloud-gaming requests.

Generates a synthetic day of playing requests (diurnal arrivals, Zipf game
popularity, log-normal sessions), serves it with every packing policy, and
prints the rental bill under continuous and EC2-style hourly billing.

Also demonstrates the *online* dispatcher driven session by session — the
way a real frontend would use it.

Run:  python examples/cloud_gaming_dispatch.py
"""

from repro.algorithms import (
    BestFit,
    FirstFit,
    ModifiedFirstFit,
    NewBinPerItem,
    NextFit,
    WorstFit,
)
from repro.analysis import render_table
from repro.cloud import CloudGamingDispatcher, ServerType, dispatch_trace
from repro.opt import opt_total_lower_bound
from repro.workloads import DiurnalPattern, generate_gaming_trace

# --- one synthetic day -----------------------------------------------------

trace = generate_gaming_trace(
    seed=42,
    horizon=24 * 60.0,  # minutes
    pattern=DiurnalPattern(base_rate=0.3, amplitude=1.5),  # evening peak
)
server = ServerType(name="gpu.large", gpu_capacity=1.0, rate=1.0, billing_quantum=60.0)
print(f"{len(trace)} playing requests over 24h; realized mu = {float(trace.mu):.1f}")

opt_lb = opt_total_lower_bound(trace.items, capacity=server.gpu_capacity)
rows = []
for algo in (FirstFit(), BestFit(), WorstFit(), NextFit(), ModifiedFirstFit(), NewBinPerItem()):
    rep = dispatch_trace(trace, algo, server_type=server)
    rows.append(
        [
            rep.algorithm_name,
            rep.num_servers_rented,
            rep.peak_concurrent_servers,
            float(rep.continuous_cost),
            float(rep.billed_cost),
            f"{rep.utilization:.0%}",
            float(rep.continuous_cost / opt_lb),
        ]
    )
print()
print(
    render_table(
        ["policy", "VMs rented", "peak VMs", "cost (continuous)", "cost (hourly)", "util", "vs OPT lb"],
        rows,
        title="One day of cloud gaming on rented game servers",
    )
)

# --- the online dispatcher, driven live ------------------------------------

print("\nOnline dispatch demo (sessions arrive one by one):")
d = CloudGamingDispatcher(FirstFit(), server_type=server)
d.start_session(0.0, gpu_demand=0.6, request_id="alice", game="battlefield-4")
d.start_session(5.0, gpu_demand=0.3, request_id="bob", game="dota-2")
print(f"  t=5  : {d.active_sessions} sessions on {d.servers_in_use} server(s)")
d.start_session(8.0, gpu_demand=0.6, request_id="carol", game="crysis-3")
print(f"  t=8  : carol needs 0.6 GPU -> {d.servers_in_use} servers now")
d.end_session("bob", 50.0)
d.end_session("alice", 55.0)
d.end_session("carol", 68.0)
report = d.shutdown()
print(
    f"  bill : {float(report.continuous_cost):g} server-minutes continuous, "
    f"{float(report.billed_cost):g} billed hourly, "
    f"{report.num_servers_rented} VMs rented"
)
