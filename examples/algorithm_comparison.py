#!/usr/bin/env python
"""Head-to-head: every packing policy across workload shapes.

Sweeps the full algorithm fleet over contrasting workloads (steady Poisson,
bursty, bimodal sizes, heavy-tailed sessions) and reports empirical
competitive ratios against the OPT lower bound — the average-case
complement to the paper's worst-case analysis.

Run:  python examples/algorithm_comparison.py
"""

from repro.algorithms import (
    BestFit,
    FirstFit,
    HarmonicFit,
    LastFit,
    ModifiedFirstFit,
    NewBinPerItem,
    NextFit,
    RandomFit,
    WorstFit,
)
from repro.analysis import compare_algorithms, render_table
from repro.workloads import (
    BoundedPareto,
    Choice,
    Clipped,
    Exponential,
    Uniform,
    generate_burst_trace,
    generate_trace,
)


def fleet():
    return [
        FirstFit(),
        BestFit(),
        WorstFit(),
        LastFit(),
        RandomFit(seed=1),
        NextFit(),
        ModifiedFirstFit(),
        HarmonicFit(num_classes=3),
        NewBinPerItem(),
    ]


WORKLOADS = {
    "steady poisson": generate_trace(
        arrival_rate=4.0,
        horizon=150.0,
        duration=Clipped(Exponential(3.0), 1.0, 9.0),
        size=Uniform(0.05, 0.7),
        seed=0,
    ),
    "bursty": generate_burst_trace(
        num_bursts=15,
        burst_size=25,
        burst_spacing=8.0,
        duration=Clipped(Exponential(5.0), 1.0, 12.0),
        size=Uniform(0.05, 0.6),
        seed=0,
    ),
    "bimodal sizes": generate_trace(
        arrival_rate=5.0,
        horizon=150.0,
        duration=Clipped(Exponential(3.0), 1.0, 8.0),
        size=Choice.of([0.05, 0.08, 0.45, 0.6], [5, 5, 1, 1]),
        seed=0,
    ),
    "heavy-tail sessions": generate_trace(
        arrival_rate=3.0,
        horizon=150.0,
        duration=BoundedPareto(1.0, 40.0, alpha=1.3),
        size=Uniform(0.1, 0.5),
        seed=0,
    ),
}

summary = {algo.name: [] for algo in fleet()}
for name, trace in WORKLOADS.items():
    measurements = compare_algorithms(trace.items, fleet())
    rows = [
        [m.algorithm_name, float(m.cost), f"{m.ratio_upper:.3f}"]
        for m in sorted(measurements, key=lambda m: m.cost)
    ]
    print(render_table(["algorithm", "total cost", "vs OPT lb"], rows,
                       title=f"{name} ({len(trace)} items, mu={float(trace.mu):.2g})"))
    print()
    for m in measurements:
        summary[m.algorithm_name].append(m.ratio_upper)

rows = [
    [name, f"{sum(rs) / len(rs):.3f}", f"{max(rs):.3f}"]
    for name, rs in sorted(summary.items(), key=lambda kv: sum(kv[1]))
]
print(render_table(["algorithm", "mean ratio", "worst ratio"], rows,
                   title="summary across workloads (lower is better)"))
print("\nNote the paper's punchline in the numbers: Best Fit often wins on "
      "average\nyet Theorem 2 shows it can be made arbitrarily bad, while "
      "First Fit is never\nfar off and carries a 2μ+13 worst-case guarantee.")
