#!/usr/bin/env python
"""A tour of ``repro.obs``: metrics, traces, profiling, and exact resume.

Four stops:

1. the deterministic metrics registry on its own — counters, gauges,
   histograms, and the Prometheus/JSON exporters;
2. a fully observed streamed run — registry + lifecycle tracer + probe
   counting + a wall-clock profiler on an injected manual clock, so even
   the latency numbers are deterministic here;
3. trace replay — reconstructing the engine's StreamSummary from the
   JSONL trace alone, float for float;
4. checkpoint → resume — a run resumed mid-stream produces the identical
   metrics snapshot, and the trace files concatenate byte-exactly.

Run:  python examples/observability_tour.py
"""

import io
import json
import tempfile
from pathlib import Path

from repro import FirstFit
from repro.obs import (
    PROBE_BUCKETS,
    ManualClock,
    MetricsRegistry,
    ObservationSession,
    observe_stream,
    replay_summary,
    verify_trace,
)
from repro.workloads import Clipped, Exponential, Uniform
from repro.workloads.generators import stream_trace

WORKLOAD = dict(
    arrival_rate=5.0,
    duration=Clipped(Exponential(25.0), 4.0, 90.0),
    size=Uniform(0.2, 0.6),
    n_items=1500,
    seed=11,
)


def fresh_stream():
    return stream_trace(**WORKLOAD)


# ---------------------------------------------------------------- stop 1
print("== 1. the metrics registry ==")
reg = MetricsRegistry()
served = reg.counter("demo_requests_total", help="Requests served")
inflight = reg.gauge("demo_inflight", help="Requests in flight")
probes = reg.histogram("demo_probes", buckets=PROBE_BUCKETS, help="Probe counts")
for n in (1, 2, 3, 5, 8):
    served.inc()
    inflight.inc()
    probes.observe(n)
inflight.dec(4)
print(f"counter={served.value}  gauge={inflight.value} (peak {inflight.peak})")
print(f"histogram: count={probes.count} sum={probes.sum}")
print("prometheus rendering (excerpt):")
for line in reg.to_prometheus().splitlines()[:4]:
    print(f"  {line}")
print(f"snapshots are byte-stable: {reg.to_json() == reg.to_json()}\n")

# ---------------------------------------------------------------- stop 2
print("== 2. a fully observed run ==")
sink = io.StringIO()
summary, session = observe_stream(
    fresh_stream(),
    FirstFit(),
    trace=sink,
    profile=True,
    clock=ManualClock(tick=0.001),  # injected: profiler never reads the host clock
    seed=WORKLOAD["seed"],
    workload={"generator": "stream_trace", "n_items": WORKLOAD["n_items"]},
)
trace_text = sink.getvalue()
r = session.registry
print(
    f"{summary.num_items} sessions -> {summary.num_bins_used} bins "
    f"(peak {summary.peak_open_bins}), cost {float(summary.total_cost):.1f}"
)
fit = r["dbp_fit_probes"]
util = r["dbp_bin_utilization_at_close"]
print(f"fit probes: {fit.count} queries, mean {fit.sum / fit.count:.2f} bins each")
print(f"mean utilization at close: {util.sum / util.count:.3f}")
assert session.profiler is not None
phases = session.profiler.phases()
print(f"profiler phases (manual clock): {', '.join(sorted(phases))}")
print(f"manifest: {session.manifest.to_json()}\n")

# ---------------------------------------------------------------- stop 3
print("== 3. trace replay ==")
replayed, recorded = replay_summary(trace_text.splitlines())
assert recorded is not None
print(f"trace records: {trace_text.count(chr(10))}")
print(f"replayed == engine summary: {replayed == summary}")
print(f"trailer  == engine summary: {recorded == summary}")
verify_trace(trace_text.splitlines())  # raises TraceReplayError on any drift
print("verify_trace: OK\n")

# ---------------------------------------------------------------- stop 4
print("== 4. checkpoint -> resume, exactly ==")
checkpoints = []
full_sink = io.StringIO()
full_summary, full_session = observe_stream(
    fresh_stream(),
    FirstFit(),
    trace=full_sink,
    seed=WORKLOAD["seed"],
    checkpoint_every=500,
    on_checkpoint=checkpoints.append,
)
cp = checkpoints[len(checkpoints) // 2]
print(
    f"full run: {len(checkpoints)} checkpoints; resuming from event "
    f"{cp.events_processed} ({cp.items_consumed} items consumed)"
)

resumed_sink = io.StringIO()
resumed_session = ObservationSession(FirstFit(), trace=resumed_sink, seed=WORKLOAD["seed"])
resumed_summary, _ = observe_stream(
    fresh_stream(),  # the same source stream, restarted
    resumed_session.algorithm,
    session=resumed_session,
    checkpoint_every=500,
    on_checkpoint=lambda _c: None,
    resume_from=cp,
)
assert resumed_summary == full_summary
assert resumed_session.registry.to_json() == full_session.registry.to_json()
print("resumed metrics snapshot == uninterrupted snapshot (byte-identical)")

# The tracer checkpoints how many records it had written; the prefix of
# the full trace up to that point plus the resumed trace is the full trace.
tracer_state = cp.observers[1]  # session observer order: metrics, then tracer
prefix = "".join(full_sink.getvalue().splitlines(keepends=True)[: tracer_state["records"]])
assert prefix + resumed_sink.getvalue() == full_sink.getvalue()
print("trace prefix + resumed trace == uninterrupted trace (byte-identical)")

# ---------------------------------------------------------------- artifacts
with tempfile.TemporaryDirectory() as tmp:
    written = full_session.write_artifacts(Path(tmp) / "obs")
    names = ", ".join(sorted(p.name for p in written.values()))
    manifest = json.loads((Path(tmp) / "obs" / "manifest.json").read_text())
    print(f"\nartifacts written: {names}")
    print(f"manifest algorithm={manifest['algorithm']} seed={manifest['seed']}")
