#!/usr/bin/env python
"""Capacity planning: from closed-form estimates to a simulated frontier.

A provider asks: *how many game servers should we cap the fleet at?*
This example answers it three ways and shows they agree:

1. closed-form fluid estimates (`repro.opt.fluid`) from the workload
   parameters alone — no simulation;
2. the realized load profile of a simulated day;
3. the cost/waiting frontier from the finite-fleet engine.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import FirstFit, simulate
from repro.analysis import render_table
from repro.cloud import serve_with_fleet_limit
from repro.opt import (
    expected_active_items,
    min_average_bins,
    offered_load,
    peak_bins_estimate,
)
from repro.opt.load import max_load
from repro.workloads import Clipped, Exponential, Uniform, generate_trace

# --- the workload contract ----------------------------------------------------

RATE = 2.0                                  # sessions per minute
DURATION = Clipped(Exponential(40.0), 5.0, 180.0)   # minutes
SIZE = Uniform(0.2, 0.5)                    # GPU fraction per session
HORIZON = 24 * 60.0

print("1) Fluid estimates (no simulation):")
rho = offered_load(RATE, DURATION, SIZE)
print(f"   offered load ρ = λ·E[S]·E[Z]        = {rho:.1f} GPU-capacity")
print(f"   expected active sessions λ·E[S]     = {expected_active_items(RATE, DURATION):.1f}")
print(f"   average-fleet floor ρ/W (bound b.1) = {min_average_bins(RATE, DURATION, SIZE):.1f}")
est_peak = peak_bins_estimate(RATE, DURATION, SIZE, quantile_z=3.0)
print(f"   z=3 peak provisioning estimate      = {est_peak:.1f} servers")

# --- one simulated day ---------------------------------------------------------

trace = generate_trace(
    arrival_rate=RATE, horizon=HORIZON, duration=DURATION, size=SIZE, seed=7
)
result = simulate(trace.items, FirstFit())
print(f"\n2) Simulated day: {len(trace)} sessions")
print(f"   realized peak load        = {float(max_load(trace.items)):.1f}")
print(f"   unlimited-fleet peak      = {result.max_bins_used} servers")
print(f"   unlimited-fleet cost      = {float(result.total_cost()):.0f} server-min")

# --- the frontier ---------------------------------------------------------------

print("\n3) Finite-fleet frontier (queueing policy):")
caps = sorted({int(round(est_peak * f)) for f in (0.5, 0.7, 0.85, 1.0, 1.2)})
rows = []
for cap in caps:
    rep = serve_with_fleet_limit(trace.items, FirstFit(), fleet_limit=cap)
    rows.append(
        [
            cap,
            f"{cap / est_peak:.2f}",
            f"{rep.mean_wait:.2f}",
            f"{float(rep.max_wait):.1f}",
            f"{rep.queue_rate:.1%}",
            f"{float(rep.total_cost):.0f}",
        ]
    )
print(
    render_table(
        ["cap", "cap / z3-estimate", "mean wait", "max wait", "queued", "cost"],
        rows,
    )
)
print(
    "\nThe z=3 fluid estimate lands where waits vanish — the back-of-envelope\n"
    "number a provider would pick before ever running a simulation, validated."
)
