#!/usr/bin/env python
"""Hunting online-packing anomalies: when serving less costs more.

Finds an item whose *removal* increases First Fit's total cost, shows the
two packings side by side as timelines, and verifies the optimum is
monotone (so the anomaly is pure online suboptimality).

Run:  python examples/anomaly_hunt.py
"""

from repro import FirstFit, simulate
from repro.analysis import find_removal_anomalies, render_packing_timeline
from repro.opt import opt_total_lower_bound
from repro.workloads import Clipped, Exponential, Uniform, generate_trace

trace = generate_trace(
    arrival_rate=2.0,
    horizon=30.0,
    duration=Clipped(Exponential(3.0), 1.0, 8.0),
    size=Uniform(0.2, 0.7),
    seed=0,
)
items = list(trace.items)
anomalies = find_removal_anomalies(items, FirstFit)
print(f"{len(trace)} items; {len(anomalies)} of them are anomalous under First Fit\n")

if not anomalies:
    raise SystemExit("no anomaly on this seed — try another")

worst = max(anomalies, key=lambda a: a.increase)
victim = next(it for it in items if it.item_id == worst.item_id)
print(f"worst anomaly: removing {victim.item_id} "
      f"(size {victim.size:.2f}, interval [{victim.arrival:.1f}, {victim.departure:.1f}])")
print(f"  cost with it    : {float(worst.base_cost):.3f}")
print(f"  cost without it : {float(worst.reduced_trace_cost):.3f}  "
      f"(+{worst.relative_increase:.1%})\n")

with_item = simulate(items, FirstFit())
without_item = simulate([it for it in items if it.item_id != victim.item_id], FirstFit())

print("packing WITH the item:")
print(render_packing_timeline(with_item, width=60, max_bins=8))
print("\npacking WITHOUT it (more bin-time despite less work):")
print(render_packing_timeline(without_item, width=60, max_bins=8))

lb_with = float(opt_total_lower_bound(items))
lb_without = float(
    opt_total_lower_bound([it for it in items if it.item_id != victim.item_id])
)
print(f"\nOPT lower bound: {lb_with:.3f} with, {lb_without:.3f} without — monotone,")
print("so the increase is entirely First Fit's online decisions: the removed")
print("item was steering later placements into bins that could drain together.")
