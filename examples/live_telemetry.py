#!/usr/bin/env python
"""Operating a dispatcher live: structured observability under a flash crowd.

Feeds a bursty MMPP day through the streaming engine with the full
``repro.obs`` stack attached — a deterministic metrics registry populated
by :class:`MetricsObserver`, a lifecycle tracer writing span-structured
JSONL, and an hourly "ops dashboard" observer that reads the registry's
gauges mid-run, the way a wall monitor would.  At the end the live
counters are reconciled against the engine's own summary, and the trace
file alone is replayed to reconstruct that summary exactly.

Run:  python examples/live_telemetry.py
"""

import io

from repro import FirstFit
from repro.core.telemetry import SimulationObserver
from repro.obs import MetricsRegistry, observe_stream, replay_summary
from repro.workloads import Clipped, Exponential, Uniform, generate_mmpp_trace

trace = generate_mmpp_trace(
    rates=(0.3, 6.0),          # quiet periods vs launch-night spikes
    mean_dwell=40.0,
    horizon=480.0,             # an 8-hour evening, minutes
    duration=Clipped(Exponential(30.0), 5.0, 120.0),
    size=Uniform(0.15, 0.55),
    seed=3,
)
print(f"{len(trace)} sessions over 8h, mu = {float(trace.mu):.2f}\n")


class HourlyDashboard(SimulationObserver):
    """Prints a fleet snapshot each simulated hour, straight off the registry.

    This is the point of the shared registry: any observer (or an exporter
    thread, in production) can read the same gauges the metrics observer
    maintains, without touching engine state.
    """

    def __init__(self, registry: MetricsRegistry, checkpoints: list[float]) -> None:
        self.registry = registry
        self.pending = list(checkpoints)

    def _tick(self, time) -> None:
        while self.pending and time > self.pending[0]:
            t = self.pending.pop(0)
            reg = self.registry
            print(
                f"{t:6.0f}"
                f"  {int(reg['dbp_active_sessions'].value):6d}"
                f"  {int(reg['dbp_open_bins'].value):7d}"
                f"  {int(reg['dbp_open_bins'].peak):5d}"
                f"  {int(reg['dbp_bins_opened_total'].value):7d}"
            )

    def on_arrival(self, time, item, bin, opened) -> None:
        self._tick(time)

    def on_departure(self, time, item_id, bin, closed) -> None:
        self._tick(time)


registry = MetricsRegistry()
dashboard = HourlyDashboard(registry, [60.0 * h for h in range(1, 9)])
trace_sink = io.StringIO()

print(f"{'time':>6}  {'active':>6}  {'servers':>7}  {'peak':>5}  {'rented':>7}")
summary, session = observe_stream(
    sorted(trace.items, key=lambda it: (it.arrival, it.item_id)),
    FirstFit(),
    trace=trace_sink,
    registry=registry,
    seed=3,
    workload={"generator": "mmpp", "horizon": 480.0},
    extra_observers=(dashboard,),
)

print(
    f"\nfinal: {summary.num_bins_used} servers rented, "
    f"peak {summary.peak_open_bins}, cost {float(summary.total_cost):.1f}"
)

# The registry's counters are maintained event by event, yet agree exactly
# with the engine's post-hoc summary — same events, same arithmetic.
assert registry["dbp_sessions_started_total"].value == summary.num_items
assert registry["dbp_bins_opened_total"].value == summary.num_bins_used
assert registry["dbp_open_bins"].peak == summary.peak_open_bins
print("live registry reconciles with the settled summary (exact).")

# Stronger still: the JSONL trace alone — no engine, no registry —
# replays to the identical StreamSummary, floats included.
replayed, recorded = replay_summary(trace_sink.getvalue().splitlines())
assert replayed == summary and recorded == summary
lines = trace_sink.getvalue().count("\n")
print(f"lifecycle trace ({lines} records) replays the summary exactly.\n")

# A taste of the exporter: the registry renders straight to Prometheus
# text format (and to byte-stable JSON via registry.to_json()).
prom = registry.to_prometheus()
for line in prom.splitlines():
    if line.startswith(("dbp_open_bins", "dbp_sessions_", "dbp_bins_")):
        print(line)
