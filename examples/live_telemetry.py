#!/usr/bin/env python
"""Operating a dispatcher live: telemetry under a flash crowd.

Feeds a bursty MMPP day through the simulator with a telemetry observer
attached, printing fleet snapshots *during* the run (the way an ops
dashboard would see them) and reconciling the live counters against the
post-hoc packing result at the end.

Run:  python examples/live_telemetry.py
"""

from repro import FirstFit, Simulator, TelemetryCollector
from repro.analysis import render_load_sparkline, render_packing_timeline
from repro.core.events import EventKind, compile_events
from repro.workloads import Clipped, Exponential, Uniform, generate_mmpp_trace

trace = generate_mmpp_trace(
    rates=(0.3, 6.0),          # quiet periods vs launch-night spikes
    mean_dwell=40.0,
    horizon=480.0,             # an 8-hour evening, minutes
    duration=Clipped(Exponential(30.0), 5.0, 120.0),
    size=Uniform(0.15, 0.55),
    seed=3,
)
print(f"{len(trace)} sessions over 8h, mu = {float(trace.mu):.2f}\n")

telemetry = TelemetryCollector()
sim = Simulator(FirstFit(), observers=[telemetry])

checkpoints = [60 * h for h in range(1, 9)]
next_checkpoint = 0
print(f"{'time':>6}  {'active':>6}  {'servers':>7}  {'peak':>5}  {'accrued cost':>12}")
for event in compile_events(trace.items):
    while next_checkpoint < len(checkpoints) and event.time > checkpoints[next_checkpoint]:
        t = checkpoints[next_checkpoint]
        print(
            f"{t:6.0f}  {telemetry.active_items:6d}  {telemetry.open_bins:7d}  "
            f"{telemetry.peak_open_bins:5d}  {float(telemetry.accrued_cost(t)):12.1f}"
        )
        next_checkpoint += 1
    if event.kind is EventKind.ARRIVAL:
        sim.arrive(event.item.arrival, event.item.size, item_id=event.item.item_id)
    else:
        sim.depart(event.item.item_id, event.item.departure)

result = sim.finish()
end = max(it.departure for it in trace.items)
print(f"\nfinal: {telemetry.bins_opened} servers rented, "
      f"peak {telemetry.peak_open_bins}, cost {float(result.total_cost()):.1f}")
# Summation order differs (closure order vs bin order), so float traces
# reconcile to rounding; exact traces (Fractions) reconcile to equality.
drift = abs(float(telemetry.accrued_cost(end)) - float(result.total_cost()))
assert drift < 1e-6, f"live counters drifted by {drift}!"
print("live telemetry reconciles with the settled bill (drift < 1e-6).\n")

print(render_packing_timeline(result, width=66, max_bins=12))
print(render_load_sparkline(result, width=66))
