#!/usr/bin/env python
"""The paper's future work, explored: constrained DBP + what clairvoyance buys.

Part 1 — zone-constrained dispatch: playing requests may only be served
from regions near the player.  Sweeps the constraint tightness and shows
the locality premium, with an ASCII timeline of the packing.

Part 2 — the interval-scheduling contrast: the same workload served blind
(the paper's model) vs with departure times known at assignment.

Run:  python examples/future_work_constrained.py
"""

from repro import FirstFit, simulate
from repro.analysis import render_load_sparkline, render_packing_timeline, render_table
from repro.clairvoyant import DurationAlignedFit, MinExpandFit, simulate_clairvoyant
from repro.constrained import (
    ConstrainedBestFit,
    ConstrainedFirstFit,
    RegionTopology,
    generate_constrained_trace,
)
from repro.core.item import Item
from repro.opt import opt_total_lower_bound

NUM_ZONES = 4

# --- Part 1: the locality premium -------------------------------------------

print("Part 1: zone-constrained dispatch on a", NUM_ZONES, "region ring\n")
rows = []
for reach in range(1, NUM_ZONES + 1):
    topo = RegionTopology.ring(NUM_ZONES, reach)
    trace = generate_constrained_trace(
        topology=topo, seed=11, horizon=8 * 60.0, arrival_rate=0.4
    )
    for algo in (ConstrainedFirstFit(), ConstrainedBestFit()):
        result = simulate(trace.items, algo)
        rows.append(
            [
                reach,
                algo.name,
                result.num_bins_used,
                f"{float(result.total_cost()):.0f}",
            ]
        )
print(render_table(["reach", "policy", "VMs rented", "cost"], rows,
                   title="rental cost vs how far a request may travel"))
print("\nreach = 1 pins every request to its home region (most expensive);")
print(f"reach = {NUM_ZONES} recovers the unconstrained problem.\n")

# A glimpse of the packing itself.
topo = RegionTopology.ring(NUM_ZONES, 2)
trace = generate_constrained_trace(topology=topo, seed=11, horizon=3 * 60.0, arrival_rate=0.2)
result = simulate(trace.items, ConstrainedFirstFit())
print(render_packing_timeline(result, width=64, max_bins=10))
print(render_load_sparkline(result, width=64))

# --- Part 2: what knowing departures is worth --------------------------------

print("\nPart 2: blind (the paper's model) vs departure-aware packing\n")
plain = [
    Item(arrival=it.arrival, departure=it.departure, size=it.size, item_id=it.item_id)
    for it in generate_constrained_trace(
        topology=RegionTopology.ring(1, 1), seed=4, horizon=12 * 60.0, arrival_rate=1.2
    ).items
]
opt_lb = float(opt_total_lower_bound(plain))
rows = []
blind = simulate(plain, FirstFit())
rows.append(["first-fit (blind)", f"{float(blind.total_cost()):.0f}",
             f"{float(blind.total_cost()) / opt_lb:.3f}"])
for algo in (MinExpandFit(), DurationAlignedFit()):
    aware = simulate_clairvoyant(plain, algo)
    rows.append([f"{algo.name} (knows d(r))", f"{float(aware.total_cost()):.0f}",
                 f"{float(aware.total_cost()) / opt_lb:.3f}"])
print(render_table(["policy", "cost", "vs OPT lb"], rows))
print("\nThe gap is the value of the information the paper's online model hides —")
print("the precise distinction Section 2 draws from interval scheduling.")
