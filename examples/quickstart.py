#!/usr/bin/env python
"""Quickstart: pack a handful of items and read the MinTotal cost.

Covers the public API in ~40 lines: build items, run an online packing
algorithm, inspect the result, and compare against the OPT bracket.

Run:  python examples/quickstart.py
"""

from repro import BestFit, FirstFit, make_items, simulate, trace_stats
from repro.opt import opt_bracket

# Each item is (arrival, departure, size) — a playing request that needs
# `size` of a game server's GPU from arrival until departure.
items = make_items(
    [
        (0.0, 8.0, 0.6),   # a long session on a heavy game
        (1.0, 3.0, 0.5),   # short session; doesn't fit next to the 0.6
        (2.0, 6.0, 0.4),   # fits into the first bin (0.6 + 0.4 = 1.0)
        (4.0, 9.0, 0.5),   # arrives after the 0.5 left
        (10.0, 12.0, 0.3), # the system is empty again before this one
    ]
)

stats = trace_stats(items)
print(f"trace: {stats.num_items} items, span={stats.span}, mu={stats.mu:.3g}, "
      f"total demand u(R)={stats.total_demand}")

for algorithm in (FirstFit(), BestFit()):
    result = simulate(items, algorithm, capacity=1.0, cost_rate=1.0)
    print(f"\n{algorithm.name}:")
    print(f"  bins ever opened : {result.num_bins_used}")
    print(f"  peak open bins   : {result.max_bins_used}")
    print(f"  total cost       : {float(result.total_cost()):g}  "
          "(= sum of bin usage times)")
    for b in result.bins:
        held = ", ".join(b.item_ids)
        print(f"    bin {b.index}: open [{b.opened_at}, {b.closed_at}] holding {held}")

bracket = opt_bracket(items)
print(f"\nOPT_total bracket: [{float(bracket.lower):g}, {float(bracket.upper):g}]")
print("any algorithm's cost must land at or above the lower end — "
      "First Fit's distance to it is its empirical competitive ratio.")
